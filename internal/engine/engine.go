// Package engine executes predictor sweeps — the (configuration ×
// benchmark) grids behind every figure of the paper — with one trace
// replay per benchmark instead of one per configuration.
//
// The old harness (internal/experiments.sweep) replayed a benchmark's
// trace from scratch for every predictor configuration, one event at a
// time through interface calls, and fanned out one unbounded goroutine
// per benchmark. The engine instead:
//
//   - groups a sweep's predictor configurations by benchmark and
//     replays each benchmark's cached trace once, feeding every
//     configuration from that single pass in event chunks (the chunk
//     stays hot in cache while each predictor consumes it, and the
//     per-event Source.Next dispatch is gone — see core.RunBatch);
//   - schedules all work units on one bounded worker pool sized by
//     GOMAXPROCS, replacing the unbounded per-benchmark fan-out;
//   - fetches traces through a TraceCache whose per-key singleflight
//     lets distinct benchmarks generate concurrently while duplicate
//     requests still coalesce.
//
// Results are bit-identical to the sequential per-configuration path:
// every configuration gets its own predictor instance, predictor state
// carries across chunks exactly as across events, and all accumulation
// is integer arithmetic into index-addressed slots, so neither
// chunking nor scheduling order can change any output
// (DESIGN.md §9). Options.Reference keeps the old per-event
// sequential path alive as the equivalence oracle the tests compare
// against.
package engine

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Options tunes sweep execution. The zero value is the production
// configuration: GOMAXPROCS workers, default chunk size.
type Options struct {
	// Workers bounds the number of concurrently executing work units;
	// 0 means runtime.GOMAXPROCS(0).
	Workers int
	// ChunkSize is the number of events per replay chunk; 0 means
	// defaultChunk.
	ChunkSize int
	// Reference switches Run to the pre-engine execution model: work
	// units run sequentially in submission order and predictor jobs
	// replay per event through core.Run instead of in chunks. Output
	// must be bit-identical to the default mode; the equivalence
	// tests in internal/experiments hold the engine to that.
	Reference bool
	// FeedSize, when positive, makes each benchmark replay feed its
	// trace through the streaming core (Stream.Feed) in slices of at
	// most FeedSize events instead of one call over the whole trace —
	// the exact input shape the online autotuner produces. Output must
	// be bit-identical to the one-shot path (state carries across Feed
	// calls); the streaming-refactor regression pass of
	// TestEngineEquivalence holds the engine to that. 0 feeds each
	// trace whole.
	FeedSize int
}

// defaultChunk is the replay chunk size: large enough to amortize the
// per-chunk predictor loop, small enough that a chunk of events
// (8 bytes each) stays resident in L1 while every predictor of the
// sweep consumes it.
const defaultChunk = 4096

// Job is one predictor configuration registered with a sweep. After
// Sweep.Run returns nil, its accessors expose the per-benchmark
// results.
type Job struct {
	mk  func() core.Predictor
	per []metrics.BenchResult
}

// PerBench returns the job's results in the sweep's benchmark order.
// Valid only after the owning Sweep.Run returned nil.
func (j *Job) PerBench() []metrics.BenchResult { return j.per }

// Weighted returns the prediction-count-weighted mean accuracy over
// the job's benchmarks (the paper's summary statistic).
func (j *Job) Weighted() float64 { return metrics.WeightedMean(j.per) }

// Sweep collects work over a fixed benchmark list, then executes all
// of it in one Run. Three kinds of work are supported: predictor
// configurations (Add) share a single chunked replay per benchmark;
// per-benchmark trace scans (AddScan) and free-form tasks (AddTask)
// run as their own units on the same pool. A Sweep is not safe for
// concurrent registration; Run may be called once.
type Sweep struct {
	opts    Options
	cache   *TraceCache
	benches []string
	budget  uint64
	jobs    []*Job
	scans   []func(i int, bench string, tr trace.Trace) error
	tasks   []func() error
}

// NewSweep returns an empty sweep over the given benchmarks at the
// given per-benchmark instruction budget, reading traces through
// cache.
func NewSweep(opts Options, cache *TraceCache, benchmarks []string, budget uint64) *Sweep {
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = defaultChunk
	}
	return &Sweep{opts: opts, cache: cache, benches: benchmarks, budget: budget}
}

// Add registers a predictor configuration. mk is called once per
// benchmark, possibly concurrently, and must return a fresh
// independent predictor each time.
func (s *Sweep) Add(mk func() core.Predictor) *Job {
	j := &Job{mk: mk}
	s.jobs = append(s.jobs, j)
	return j
}

// AddScan registers a custom pass over every benchmark's trace. fn is
// called once per benchmark — concurrently across benchmarks — with
// the benchmark's index in the sweep's benchmark list, its name and
// its cached trace. fn must confine its writes to state owned by this
// scan (typically an i-indexed slot) and must not modify the trace.
func (s *Sweep) AddScan(fn func(i int, bench string, tr trace.Trace) error) {
	s.scans = append(s.scans, fn)
}

// AddTask registers a free-form unit of work on the sweep's pool, for
// per-benchmark computations that do not consume the sweep's shared
// traces (VM reruns, ILP measurement, fixed-benchmark scans).
func (s *Sweep) AddTask(fn func() error) {
	s.tasks = append(s.tasks, fn)
}

// Run executes all registered work and blocks until it finishes,
// returning the first error in unit submission order.
func (s *Sweep) Run() error {
	for _, j := range s.jobs {
		j.per = make([]metrics.BenchResult, len(s.benches))
	}
	var units []func() error
	if len(s.jobs) > 0 {
		for bi := range s.benches {
			bi := bi
			units = append(units, func() error { return s.replayBench(bi) })
		}
	}
	for _, scan := range s.scans {
		scan := scan
		for bi, bench := range s.benches {
			bi, bench := bi, bench
			units = append(units, func() error {
				tr, err := s.cache.Get(bench, s.budget)
				if err != nil {
					return err
				}
				return scan(bi, bench, tr)
			})
		}
	}
	units = append(units, s.tasks...)

	if s.opts.Reference {
		for _, u := range units {
			if err := u(); err != nil {
				return err
			}
		}
		return nil
	}
	return runPool(units, s.opts.Workers)
}

// replayBench is one work unit: all predictor configurations of the
// sweep over one benchmark, from a single pass over its trace.
func (s *Sweep) replayBench(bi int) error {
	bench := s.benches[bi]
	tr, err := s.cache.Get(bench, s.budget)
	if err != nil {
		return err
	}
	preds := make([]core.Predictor, len(s.jobs))
	for ji, j := range s.jobs {
		preds[ji] = j.mk()
	}
	var results []core.Result
	if s.opts.Reference {
		results = make([]core.Result, len(s.jobs))
		for ji, p := range preds {
			results[ji] = core.Run(p, trace.NewReader(tr))
		}
	} else {
		// The one-shot offline replay is the streaming core fed the
		// whole trace: Feed chunks it at ChunkSize internally, so this
		// is byte-identical to the pre-Stream replayChunks call.
		st := NewStream(preds, s.opts.ChunkSize)
		if fs := s.opts.FeedSize; fs > 0 {
			for start := 0; start < len(tr); start += fs {
				end := start + fs
				if end > len(tr) {
					end = len(tr)
				}
				st.Feed(tr[start:end])
			}
		} else {
			st.Feed(tr)
		}
		results = st.Finalize()
	}
	for ji, j := range s.jobs {
		j.per[bi] = metrics.BenchResult{Benchmark: bench, Result: results[ji]}
	}
	return nil
}

// runPool executes the units on a bounded worker pool and returns the
// first error in unit order. Every unit runs regardless of other
// units' errors: units write only their own slots, so finishing the
// batch keeps the error report deterministic without cancellation
// plumbing.
func runPool(units []func() error, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	errs := make([]error, len(units))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = units[i]()
			}
		}()
	}
	for i := range units {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
