// Package leakcheck is a stdlib-only goroutine-leak detector for
// tests: it snapshots runtime.NumGoroutine when armed and, at test
// cleanup, fails the test if the count has not come back down. It is
// the dynamic complement to the static goroutine-lifecycle rule
// (internal/analysis): the rule proves every goroutine in the serving
// tier is joinable; this check proves the Close/drain paths actually
// join them.
//
// Usage, first line of a test:
//
//	leakcheck.Check(t)
//
// Goroutines wind down asynchronously after a Close returns (connection
// handlers observing a closed socket, tickers draining), so the check
// retries with a short backoff before declaring a leak, and dumps all
// goroutine stacks when it does.
//
// The count-delta approach needs a quiet baseline: arm it only in
// tests that do not run in parallel with others, or the neighbours'
// goroutines show up in the delta.
package leakcheck

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the checker needs, so the package
// stays importable outside _test files without depending on testing
// internals.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// patience bounds how long the cleanup waits for stragglers to wind
// down before declaring a leak. A variable so the package's own tests
// can fail fast.
var patience = 5 * time.Second

// Check arms the leak detector for the current test. It must be called
// before the test spawns anything; the registered cleanup runs after
// the test body (and its other cleanups) finish.
func Check(t TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		t.Helper()
		after, ok := settle(before, patience)
		if ok {
			return
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("leaked %d goroutine(s): %d before the test, %d after; stacks:\n%s",
			after-before, before, after, buf[:n])
	})
}

// settle polls the goroutine count until it drops back to the
// baseline or the deadline expires. Exiting goroutines disappear from
// the count a little after their function returns, hence the retry
// rather than a single sample.
func settle(before int, patience time.Duration) (after int, ok bool) {
	deadline := time.Now().Add(patience)
	for sleep := time.Millisecond; ; sleep *= 2 {
		after = runtime.NumGoroutine()
		if after <= before {
			return after, true
		}
		if time.Now().After(deadline) {
			return after, false
		}
		if sleep > 100*time.Millisecond {
			sleep = 100 * time.Millisecond
		}
		time.Sleep(sleep)
	}
}
