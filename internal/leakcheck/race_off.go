//go:build !race

package leakcheck

// RaceEnabled reports whether the binary was built with the race
// detector. Zero-allocation assertions (testing.AllocsPerRun == 0)
// skip when it is true: the detector instruments synchronization with
// its own heap allocations, so the budget only holds in pure builds.
const RaceEnabled = false
