package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// fakeTB records what the checker does instead of failing a real test.
type fakeTB struct {
	cleanups []func()
	failures []string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.failures = append(f.failures, format)
}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }

func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCleanTestPasses(t *testing.T) {
	ft := &fakeTB{}
	Check(ft)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	ft.runCleanups()
	if len(ft.failures) != 0 {
		t.Fatalf("clean test reported a leak: %v", ft.failures)
	}
}

func TestLeakIsReported(t *testing.T) {
	old := patience
	patience = 200 * time.Millisecond
	defer func() { patience = old }()

	ft := &fakeTB{}
	Check(ft)
	quit := make(chan struct{})
	go func() { <-quit }() // still parked when cleanup runs
	ft.runCleanups()
	close(quit)
	if len(ft.failures) != 1 || !strings.Contains(ft.failures[0], "leaked") {
		t.Fatalf("leak not reported: %v", ft.failures)
	}
}

func TestSettleWaitsForLateExits(t *testing.T) {
	base := runtime.NumGoroutine()
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// The goroutine is alive when settle starts polling; settle must
	// ride out its exit instead of reporting on the first sample.
	if after, ok := settle(base, 2*time.Second); !ok {
		t.Fatalf("settle did not wait out the exiting goroutine: %d > %d", after, base)
	}
	<-done
}
