package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAsm(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestEncodeRoundTrip(t *testing.T) {
	// Every encoder/decoder pair must agree on field placement.
	w := isa.EncodeR(isa.FnADDU, 3, 4, 5, 0)
	in := isa.Decode(w)
	if in.Op != isa.OpSpecial || in.Rd != 3 || in.Rs != 4 || in.Rt != 5 || in.Funct != isa.FnADDU {
		t.Errorf("R decode mismatch: %+v", in)
	}
	w = isa.EncodeI(isa.OpADDIU, 7, 8, 0xfffe)
	in = isa.Decode(w)
	if in.Op != isa.OpADDIU || in.Rt != 7 || in.Rs != 8 || in.Imm != 0xfffe {
		t.Errorf("I decode mismatch: %+v", in)
	}
	if in.SImm() != 0xfffffffe {
		t.Errorf("SImm = %#x, want sign-extended", in.SImm())
	}
	w = isa.EncodeJ(isa.OpJAL, 0x123456)
	in = isa.Decode(w)
	if in.Op != isa.OpJAL || in.Target != 0x123456 {
		t.Errorf("J decode mismatch: %+v", in)
	}
}

func TestRegByName(t *testing.T) {
	cases := map[string]int{"zero": 0, "at": 1, "v0": 2, "a0": 4, "t0": 8,
		"s0": 16, "t8": 24, "gp": 28, "sp": 29, "fp": 30, "ra": 31, "5": 5}
	for name, want := range cases {
		got, ok := isa.RegByName(name)
		if !ok || got != want {
			t.Errorf("RegByName(%q) = %d,%v want %d", name, got, ok, want)
		}
	}
	if _, ok := isa.RegByName("bogus"); ok {
		t.Error("bogus register resolved")
	}
	if _, ok := isa.RegByName("32"); ok {
		t.Error("register 32 resolved")
	}
}

func TestBasicProgram(t *testing.T) {
	p := mustAsm(t, `
		# a tiny program
		main:
			addiu $t0, $zero, 5
			addu  $t1, $t0, $t0
			li    $v0, 10
			syscall
	`)
	if len(p.Text) != 4 {
		t.Fatalf("text has %d words, want 4", len(p.Text))
	}
	if p.Entry != isa.TextBase {
		t.Errorf("entry = %#x", p.Entry)
	}
	in := isa.Decode(p.Text[0])
	if in.Op != isa.OpADDIU || in.Rt != isa.RegT0 || in.Imm != 5 {
		t.Errorf("first word decodes to %+v", in)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAsm(t, `
		main:
		top:	addiu $t0, $t0, 1
			bne $t0, $t1, top
			beq $t0, $t1, down
			nop
		down:	jr $ra
	`)
	// bne at index 1 targets index 0: offset = (0 - 2) = -2 words.
	in := isa.Decode(p.Text[1])
	if in.Op != isa.OpBNE || int16(in.Imm) != -2 {
		t.Errorf("bne encodes imm %d, want -2", int16(in.Imm))
	}
	// beq at index 2 targets index 4: offset = 4 - 3 = 1.
	in = isa.Decode(p.Text[2])
	if in.Op != isa.OpBEQ || int16(in.Imm) != 1 {
		t.Errorf("beq encodes imm %d, want 1", int16(in.Imm))
	}
}

func TestJumpEncoding(t *testing.T) {
	p := mustAsm(t, `
		main:	jal func
			j main
		func:	jr $ra
	`)
	in := isa.Decode(p.Text[0])
	want := uint32(isa.TextBase+8) >> 2
	if in.Op != isa.OpJAL || in.Target != want&0x3ffffff {
		t.Errorf("jal target = %#x, want %#x", in.Target, want)
	}
}

func TestDataDirectivesAndSymbols(t *testing.T) {
	p := mustAsm(t, `
		.data
		nums:	.word 1, 2, 0x30, -4
		bytes:	.byte 1, 2, 3
		.align 2
		half:	.half 0x1234
		.align 2
		str:	.asciiz "hi\n"
		buf:	.space 8
		ptr:	.word str
	`)
	if got := p.Symbols["nums"]; got != isa.DataBase {
		t.Errorf("nums at %#x", got)
	}
	// .word values, little-endian.
	if p.Data[0] != 1 || p.Data[4] != 2 || p.Data[8] != 0x30 {
		t.Errorf("word data wrong: % x", p.Data[:12])
	}
	if p.Data[12] != 0xfc || p.Data[15] != 0xff {
		t.Errorf("-4 encodes as % x", p.Data[12:16])
	}
	if got := p.Symbols["bytes"]; got != isa.DataBase+16 {
		t.Errorf("bytes at %#x", got)
	}
	// .align 2 pads 16+3=19 to 20.
	if got := p.Symbols["half"]; got != isa.DataBase+20 {
		t.Errorf("half at %#x", got)
	}
	strAddr := p.Symbols["str"]
	off := strAddr - isa.DataBase
	if string(p.Data[off:off+3]) != "hi\n" || p.Data[off+3] != 0 {
		t.Errorf("asciiz content wrong: % x", p.Data[off:off+4])
	}
	// ptr holds str's absolute address.
	ptrOff := p.Symbols["ptr"] - isa.DataBase
	got := uint32(p.Data[ptrOff]) | uint32(p.Data[ptrOff+1])<<8 |
		uint32(p.Data[ptrOff+2])<<16 | uint32(p.Data[ptrOff+3])<<24
	if got != strAddr {
		t.Errorf("ptr = %#x, want %#x", got, strAddr)
	}
}

func TestLiExpansion(t *testing.T) {
	p := mustAsm(t, `
		main:
			li $t0, 5          # 1 word (addiu)
			li $t1, -5         # 1 word (addiu)
			li $t2, 0xbeef     # 1 word (ori)
			li $t3, 0x12345678 # 2 words (lui+ori)
			li $t4, 0x10000    # 1 word (lui only)
	`)
	if len(p.Text) != 6 {
		t.Fatalf("li expansion produced %d words, want 6", len(p.Text))
	}
	in := isa.Decode(p.Text[3])
	if in.Op != isa.OpLUI || in.Imm != 0x1234 {
		t.Errorf("lui half = %+v", in)
	}
	in = isa.Decode(p.Text[4])
	if in.Op != isa.OpORI || in.Imm != 0x5678 {
		t.Errorf("ori half = %+v", in)
	}
	in = isa.Decode(p.Text[5])
	if in.Op != isa.OpLUI || in.Imm != 1 {
		t.Errorf("lui-only = %+v", in)
	}
}

func TestLaResolvesDataAddress(t *testing.T) {
	p := mustAsm(t, `
		.data
		x: .word 42
		.text
		main:	la $t0, x
	`)
	lui := isa.Decode(p.Text[0])
	ori := isa.Decode(p.Text[1])
	addr := lui.Imm<<16 | ori.Imm
	if addr != isa.DataBase {
		t.Errorf("la resolves to %#x, want %#x", addr, isa.DataBase)
	}
}

func TestMemOperands(t *testing.T) {
	p := mustAsm(t, `
		.data
		arr: .word 1, 2, 3
		.text
		main:
			lw $t0, 8($sp)
			lw $t1, -4($sp)
			sw $t0, 0($gp)
			lw $t2, arr
			lw $t3, arr+8
	`)
	in := isa.Decode(p.Text[0])
	if in.Op != isa.OpLW || in.Rs != isa.RegSP || in.Imm != 8 {
		t.Errorf("lw 8($sp) = %+v", in)
	}
	in = isa.Decode(p.Text[1])
	if int16(in.Imm) != -4 {
		t.Errorf("lw -4($sp) imm = %d", int16(in.Imm))
	}
	// lw $t2, arr expands to lui+lw; check the effective address.
	lui := isa.Decode(p.Text[3])
	lw := isa.Decode(p.Text[4])
	addr := lui.Imm<<16 + uint32(int32(int16(lw.Imm)))
	if addr != isa.DataBase {
		t.Errorf("lw label resolves to %#x", addr)
	}
	lui = isa.Decode(p.Text[5])
	lw = isa.Decode(p.Text[6])
	addr = lui.Imm<<16 + uint32(int32(int16(lw.Imm)))
	if addr != isa.DataBase+8 {
		t.Errorf("lw label+8 resolves to %#x", addr)
	}
}

func TestHiLoCarryAdjust(t *testing.T) {
	// A data symbol whose low half is >= 0x8000 exercises the
	// sign-extension carry in the load expansion.
	var sb strings.Builder
	sb.WriteString(".data\n.space 0x9000\nx: .word 7\n.text\nmain: lw $t0, x\n")
	p := mustAsm(t, sb.String())
	lui := isa.Decode(p.Text[0])
	lw := isa.Decode(p.Text[1])
	addr := lui.Imm<<16 + uint32(int32(int16(lw.Imm)))
	if want := uint32(isa.DataBase + 0x9000); addr != want {
		t.Errorf("effective address %#x, want %#x", addr, want)
	}
}

func TestPseudoBranches(t *testing.T) {
	p := mustAsm(t, `
		main:
			blt $t0, $t1, out
			bge $t0, $t1, out
			bgt $t0, $t1, out
			ble $t0, $t1, out
			bltu $t0, $t1, out
			beqz $t0, out
			bnez $t0, out
			b out
		out:	nop
	`)
	// blt = slt $at,$t0,$t1 ; bne $at,$zero
	in := isa.Decode(p.Text[0])
	if in.Funct != isa.FnSLT || in.Rd != isa.RegAT || in.Rs != isa.RegT0 || in.Rt != isa.RegT1 {
		t.Errorf("blt slt = %+v", in)
	}
	if isa.Decode(p.Text[1]).Op != isa.OpBNE {
		t.Error("blt should branch with bne")
	}
	if isa.Decode(p.Text[3]).Op != isa.OpBEQ {
		t.Error("bge should branch with beq")
	}
	// bgt swaps operands.
	in = isa.Decode(p.Text[4])
	if in.Rs != isa.RegT1 || in.Rt != isa.RegT0 {
		t.Errorf("bgt slt operands = %+v", in)
	}
	if isa.Decode(p.Text[8]).Funct != isa.FnSLTU {
		t.Error("bltu should use sltu")
	}
}

func TestMulDivRemPseudo(t *testing.T) {
	p := mustAsm(t, `
		main:
			mul $t0, $t1, $t2
			div $t3, $t4, $t5
			rem $t6, $t4, $t5
			div2 $t1, $t2
			mflo $t7
	`)
	if isa.Decode(p.Text[0]).Funct != isa.FnMULT || isa.Decode(p.Text[1]).Funct != isa.FnMFLO {
		t.Error("mul expansion wrong")
	}
	if isa.Decode(p.Text[2]).Funct != isa.FnDIV || isa.Decode(p.Text[3]).Funct != isa.FnMFLO {
		t.Error("div pseudo expansion wrong")
	}
	if isa.Decode(p.Text[5]).Funct != isa.FnMFHI {
		t.Error("rem should read HI")
	}
	if isa.Decode(p.Text[6]).Funct != isa.FnDIV {
		t.Error("div2 should be a bare divide")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := mustAsm(t, `
	# full-line comment

	main: nop # trailing comment
	.data
	s: .asciiz "has # hash"
	`)
	if len(p.Text) != 1 {
		t.Errorf("text = %d words", len(p.Text))
	}
	if !strings.Contains(string(p.Data), "has # hash") {
		t.Error("hash inside string was treated as comment")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown op", "main: frob $t0", "unknown instruction"},
		{"unknown reg", "main: addu $t0, $qq, $t1", "unknown register"},
		{"undefined label", "main: j nowhere", "undefined symbol"},
		{"duplicate label", "x: nop\nx: nop", "duplicate label"},
		{"imm range", "main: addiu $t0, $zero, 70000", "out of signed 16-bit range"},
		{"imm range unsigned", "main: ori $t0, $zero, -1", "out of unsigned 16-bit range"},
		{"shift range", "main: sll $t0, $t0, 32", "shift amount out of range"},
		{"instr in data", ".data\nmain: nop", "instruction in .data"},
		{"bad directive", ".frobnicate 3", "unknown directive"},
		{"word in text", ".text\n.word 3", "only allowed in .data"},
		{"bad operand count", "main: addu $t0, $t1", "wants 3 operands"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestErrorCarriesLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus $t0\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if aerr.Line != 3 {
		t.Errorf("error line = %d, want 3", aerr.Line)
	}
}

func TestMainEntryDetection(t *testing.T) {
	p := mustAsm(t, "helper: nop\nmain: nop\n")
	if p.Entry != isa.TextBase+4 {
		t.Errorf("entry = %#x, want main's address %#x", p.Entry, isa.TextBase+4)
	}
}

func TestParseIntForms(t *testing.T) {
	cases := map[string]int64{
		"0":          0,
		"-12":        -12,
		"0x1f":       31,
		"'A'":        65,
		"'\\n'":      10,
		"0xffffffff": 0xffffffff,
	}
	for s, want := range cases {
		got, err := parseInt(s)
		if err != nil || got != want {
			t.Errorf("parseInt(%q) = %d,%v want %d", s, got, err, want)
		}
	}
	if _, err := parseInt("zork"); err == nil {
		t.Error("parseInt accepted garbage")
	}
}

func TestSplitOperands(t *testing.T) {
	got := splitOperands(`$t0, 8($sp), "a,b", label+4`)
	want := []string{"$t0", "8($sp)", `"a,b"`, "label+4"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("operand %d = %q, want %q", i, got[i], want[i])
		}
	}
}
