package asm

import "repro/internal/isa"

// encode emits the word(s) for one mnemonic, expanding pseudo
// instructions.
func (a *assembler) encode(m string, ops []operand) error {
	switch m {
	// R-type arithmetic/logic
	case "add":
		return a.rType(m, ops, isa.FnADD)
	case "addu":
		return a.rType(m, ops, isa.FnADDU)
	case "sub":
		return a.rType(m, ops, isa.FnSUB)
	case "subu":
		return a.rType(m, ops, isa.FnSUBU)
	case "and":
		return a.rType(m, ops, isa.FnAND)
	case "or":
		return a.rType(m, ops, isa.FnOR)
	case "xor":
		return a.rType(m, ops, isa.FnXOR)
	case "nor":
		return a.rType(m, ops, isa.FnNOR)
	case "slt":
		return a.rType(m, ops, isa.FnSLT)
	case "sltu":
		return a.rType(m, ops, isa.FnSLTU)

	// shifts
	case "sll":
		return a.shift(m, ops, isa.FnSLL)
	case "srl":
		return a.shift(m, ops, isa.FnSRL)
	case "sra":
		return a.shift(m, ops, isa.FnSRA)
	case "sllv":
		return a.shiftV(m, ops, isa.FnSLLV)
	case "srlv":
		return a.shiftV(m, ops, isa.FnSRLV)
	case "srav":
		return a.shiftV(m, ops, isa.FnSRAV)

	// multiply/divide unit
	case "mult", "multu", "div2", "divu":
		regs, err := a.wantRegs(m, ops, 2)
		if err != nil {
			return err
		}
		fn := map[string]uint32{
			"mult": isa.FnMULT, "multu": isa.FnMULTU,
			"div2": isa.FnDIV, "divu": isa.FnDIVU,
		}[m]
		return a.emit(isa.EncodeR(fn, 0, regs[0], regs[1], 0))
	case "mfhi", "mflo", "mthi", "mtlo":
		regs, err := a.wantRegs(m, ops, 1)
		if err != nil {
			return err
		}
		switch m {
		case "mfhi":
			return a.emit(isa.EncodeR(isa.FnMFHI, regs[0], 0, 0, 0))
		case "mflo":
			return a.emit(isa.EncodeR(isa.FnMFLO, regs[0], 0, 0, 0))
		case "mthi":
			return a.emit(isa.EncodeR(isa.FnMTHI, 0, regs[0], 0, 0))
		default:
			return a.emit(isa.EncodeR(isa.FnMTLO, 0, regs[0], 0, 0))
		}

	// I-type arithmetic/logic
	case "addi":
		return a.iTypeArith(m, ops, isa.OpADDI, true)
	case "addiu":
		return a.iTypeArith(m, ops, isa.OpADDIU, true)
	case "slti":
		return a.iTypeArith(m, ops, isa.OpSLTI, true)
	case "sltiu":
		return a.iTypeArith(m, ops, isa.OpSLTIU, true)
	case "andi":
		return a.iTypeArith(m, ops, isa.OpANDI, false)
	case "ori":
		return a.iTypeArith(m, ops, isa.OpORI, false)
	case "xori":
		return a.iTypeArith(m, ops, isa.OpXORI, false)
	case "lui":
		if len(ops) != 2 || ops[0].kind != opReg || ops[1].kind != opImm {
			return a.errf("lui wants $rt, imm")
		}
		imm, err := a.immIn(m, ops[1].imm, false)
		if err != nil {
			return err
		}
		return a.emit(isa.EncodeI(isa.OpLUI, ops[0].reg, 0, imm))

	// loads/stores
	case "lw":
		return a.memOp(m, ops, isa.OpLW)
	case "lh":
		return a.memOp(m, ops, isa.OpLH)
	case "lhu":
		return a.memOp(m, ops, isa.OpLHU)
	case "lb":
		return a.memOp(m, ops, isa.OpLB)
	case "lbu":
		return a.memOp(m, ops, isa.OpLBU)
	case "sw":
		return a.memOp(m, ops, isa.OpSW)
	case "sh":
		return a.memOp(m, ops, isa.OpSH)
	case "sb":
		return a.memOp(m, ops, isa.OpSB)

	// branches
	case "beq":
		return a.branch2(m, ops, isa.OpBEQ)
	case "bne":
		return a.branch2(m, ops, isa.OpBNE)
	case "blez":
		return a.branch1(m, ops, isa.OpBLEZ, 0)
	case "bgtz":
		return a.branch1(m, ops, isa.OpBGTZ, 0)
	case "bltz":
		return a.branch1(m, ops, isa.OpRegImm, isa.RtBLTZ)
	case "bgez":
		return a.branch1(m, ops, isa.OpRegImm, isa.RtBGEZ)

	// jumps
	case "j", "jal":
		if len(ops) != 1 || ops[0].kind != opSym {
			return a.errf("%s wants a label", m)
		}
		op := uint32(isa.OpJ)
		if m == "jal" {
			op = isa.OpJAL
		}
		return a.emitReloc(isa.EncodeJ(op, 0), relJump, ops[0].sym, ops[0].addend)
	case "jr":
		regs, err := a.wantRegs(m, ops, 1)
		if err != nil {
			return err
		}
		return a.emit(isa.EncodeR(isa.FnJR, 0, regs[0], 0, 0))
	case "jalr":
		regs, err := a.wantRegs(m, ops, 1)
		if err != nil {
			return err
		}
		return a.emit(isa.EncodeR(isa.FnJALR, isa.RegRA, regs[0], 0, 0))

	case "syscall":
		if len(ops) != 0 {
			return a.errf("syscall takes no operands")
		}
		return a.emit(isa.EncodeR(isa.FnSYSCALL, 0, 0, 0, 0))

	default:
		return a.encodePseudo(m, ops)
	}
}

// encodePseudo expands the assembler's pseudo instructions.
func (a *assembler) encodePseudo(m string, ops []operand) error {
	switch m {
	case "nop":
		return a.emit(0) // sll $0,$0,0

	case "move":
		regs, err := a.wantRegs(m, ops, 2)
		if err != nil {
			return err
		}
		return a.emit(isa.EncodeR(isa.FnADDU, regs[0], regs[1], 0, 0))

	case "neg":
		regs, err := a.wantRegs(m, ops, 2)
		if err != nil {
			return err
		}
		return a.emit(isa.EncodeR(isa.FnSUBU, regs[0], 0, regs[1], 0))

	case "not":
		regs, err := a.wantRegs(m, ops, 2)
		if err != nil {
			return err
		}
		return a.emit(isa.EncodeR(isa.FnNOR, regs[0], regs[1], 0, 0))

	case "li":
		if len(ops) != 2 || ops[0].kind != opReg || ops[1].kind != opImm {
			return a.errf("li wants $rd, imm")
		}
		return a.loadImm(ops[0].reg, ops[1].imm)

	case "la":
		if len(ops) != 2 || ops[0].kind != opReg || ops[1].kind != opSym {
			return a.errf("la wants $rd, label")
		}
		if err := a.emitReloc(isa.EncodeI(isa.OpLUI, ops[0].reg, 0, 0),
			relHi16, ops[1].sym, ops[1].addend); err != nil {
			return err
		}
		return a.emitReloc(isa.EncodeI(isa.OpORI, ops[0].reg, ops[0].reg, 0),
			relLo16, ops[1].sym, ops[1].addend)

	case "b":
		if len(ops) != 1 || ops[0].kind != opSym {
			return a.errf("b wants a label")
		}
		return a.emitReloc(isa.EncodeI(isa.OpBEQ, 0, 0, 0),
			relBranch, ops[0].sym, ops[0].addend)

	case "beqz":
		if len(ops) != 2 || ops[0].kind != opReg || ops[1].kind != opSym {
			return a.errf("beqz wants $rs, label")
		}
		return a.emitReloc(isa.EncodeI(isa.OpBEQ, 0, ops[0].reg, 0),
			relBranch, ops[1].sym, ops[1].addend)

	case "bnez":
		if len(ops) != 2 || ops[0].kind != opReg || ops[1].kind != opSym {
			return a.errf("bnez wants $rs, label")
		}
		return a.emitReloc(isa.EncodeI(isa.OpBNE, 0, ops[0].reg, 0),
			relBranch, ops[1].sym, ops[1].addend)

	case "blt", "bge", "bgt", "ble", "bltu", "bgeu":
		if len(ops) != 3 || ops[0].kind != opReg || ops[1].kind != opReg || ops[2].kind != opSym {
			return a.errf("%s wants $rs, $rt, label", m)
		}
		rs, rt := ops[0].reg, ops[1].reg
		slt := uint32(isa.FnSLT)
		if m == "bltu" || m == "bgeu" {
			slt = isa.FnSLTU
		}
		// bgt/ble compare swapped operands.
		if m == "bgt" || m == "ble" {
			rs, rt = rt, rs
		}
		if err := a.emit(isa.EncodeR(slt, isa.RegAT, rs, rt, 0)); err != nil {
			return err
		}
		op := uint32(isa.OpBNE) // blt/bgt/bltu: branch if $at != 0
		if m == "bge" || m == "ble" || m == "bgeu" {
			op = isa.OpBEQ
		}
		return a.emitReloc(isa.EncodeI(op, 0, isa.RegAT, 0),
			relBranch, ops[2].sym, ops[2].addend)

	case "mul":
		regs, err := a.wantRegs(m, ops, 3)
		if err != nil {
			return err
		}
		if err := a.emit(isa.EncodeR(isa.FnMULT, 0, regs[1], regs[2], 0)); err != nil {
			return err
		}
		return a.emit(isa.EncodeR(isa.FnMFLO, regs[0], 0, 0, 0))

	case "div":
		// Three-operand form is the pseudo; the native two-operand
		// divide is spelled div2.
		regs, err := a.wantRegs(m, ops, 3)
		if err != nil {
			return err
		}
		if err := a.emit(isa.EncodeR(isa.FnDIV, 0, regs[1], regs[2], 0)); err != nil {
			return err
		}
		return a.emit(isa.EncodeR(isa.FnMFLO, regs[0], 0, 0, 0))

	case "rem":
		regs, err := a.wantRegs(m, ops, 3)
		if err != nil {
			return err
		}
		if err := a.emit(isa.EncodeR(isa.FnDIV, 0, regs[1], regs[2], 0)); err != nil {
			return err
		}
		return a.emit(isa.EncodeR(isa.FnMFHI, regs[0], 0, 0, 0))

	default:
		return a.errf("unknown instruction %q", m)
	}
}

// loadImm emits the shortest sequence materializing v into rd.
func (a *assembler) loadImm(rd int, v int64) error {
	if v >= -32768 && v <= 32767 {
		return a.emit(isa.EncodeI(isa.OpADDIU, rd, 0, uint32(v)&0xffff))
	}
	if v >= 0 && v <= 0xffff {
		return a.emit(isa.EncodeI(isa.OpORI, rd, 0, uint32(v)))
	}
	u := uint32(v)
	if err := a.emit(isa.EncodeI(isa.OpLUI, rd, 0, u>>16)); err != nil {
		return err
	}
	if u&0xffff != 0 {
		return a.emit(isa.EncodeI(isa.OpORI, rd, rd, u&0xffff))
	}
	return nil
}

// resolve patches all relocations once every label is known.
func (a *assembler) resolve() error {
	for _, r := range a.relocs {
		target, ok := a.symbols[r.symbol]
		if !ok {
			return &Error{Line: r.line, Msg: "undefined symbol \"" + r.symbol + "\""}
		}
		addr := target + uint32(r.addend)
		switch r.kind {
		case relHi16:
			// Paired with an ori, which zero-extends: plain split.
			a.text[r.index] |= (addr >> 16) & 0xffff
		case relHi16Adj:
			// Paired with a load/store offset, which sign-extends:
			// pre-add the carry so hi<<16 + signext(lo) == addr.
			a.text[r.index] |= ((addr + 0x8000) >> 16) & 0xffff
		case relLo16:
			a.text[r.index] |= addr & 0xffff
		case relBranch:
			pc := isa.TextBase + uint32(4*r.index)
			diff := int32(addr) - int32(pc+4)
			if diff%4 != 0 {
				return &Error{Line: r.line, Msg: "misaligned branch target"}
			}
			words := diff / 4
			if words < -32768 || words > 32767 {
				return &Error{Line: r.line, Msg: "branch target out of range"}
			}
			a.text[r.index] |= uint32(words) & 0xffff
		case relJump:
			a.text[r.index] |= (addr >> 2) & 0x3ffffff
		case relWord:
			for i := 0; i < 4; i++ {
				a.data[r.index+i] = byte(addr >> (8 * i))
			}
		}
	}
	return nil
}
