// Package asm implements a two-pass assembler for the MR32 ISA
// (internal/isa), sufficient to build the repository's SPECint95-like
// benchmark programs (internal/progs).
//
// Supported syntax (a pragmatic MIPS-assembler subset):
//
//	# comment to end of line
//	label:              # bound to the current segment position
//	.text / .data       # segment selection
//	.word  e, e, ...    # 32-bit values; e is an integer or a label
//	.half  e, e, ...    # 16-bit values
//	.byte  e, e, ...    # 8-bit values
//	.space n            # n zero bytes
//	.align n            # align to 2^n bytes
//	.asciiz "str"       # NUL-terminated string (escapes: \n \t \0 \\ \")
//	.ascii  "str"
//	.globl name         # accepted and ignored
//	op operands         # instructions; operands are $reg, imm,
//	                    # label, or offset($reg)
//
// Native instructions cover the MR32 set; the usual pseudo-instructions
// (li, la, move, nop, b, beqz, bnez, blt/bgt/ble/bge and unsigned
// variants, neg, not, mul, rem, three-operand div, lw/sw with a label
// address) are expanded using $at as the assembler temporary.
package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Program is the output of the assembler: a text segment of encoded
// instructions based at isa.TextBase, a data segment based at
// isa.DataBase, and the resolved symbol table.
type Program struct {
	Text    []uint32
	Data    []byte
	Entry   uint32 // address of the "main" label, or isa.TextBase
	Symbols map[string]uint32
}

// Error is an assembly diagnostic carrying the source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// relocation kinds.
type relocKind int

const (
	relHi16    relocKind = iota // upper 16 bits, paired with a zero-extending lo (ori)
	relHi16Adj                  // upper 16 bits carry-adjusted for a sign-extending lo (loads/stores)
	relLo16                     // lower 16 bits of a symbol address
	relBranch                   // signed word offset from pc+4
	relJump                     // 26-bit word address
	relWord                     // full 32-bit address in .word data
)

type reloc struct {
	kind   relocKind
	symbol string
	// text index for instruction relocs, data offset for relWord.
	index int
	line  int
	// addend is added to the symbol address before encoding.
	addend int32
}

type assembler struct {
	text    []uint32
	data    []byte
	symbols map[string]uint32
	relocs  []reloc
	inData  bool
	line    int
}

// Assemble translates MR32 assembly source into a Program.
func Assemble(src string) (*Program, error) {
	a := &assembler{symbols: make(map[string]uint32)}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.doLine(raw); err != nil {
			return nil, err
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	p := &Program{Text: a.text, Data: a.data, Symbols: a.symbols, Entry: isa.TextBase}
	if main, ok := a.symbols["main"]; ok {
		p.Entry = main
	}
	return p, nil
}

func (a *assembler) errf(format string, args ...interface{}) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

// here returns the address of the next emitted byte/word in the
// current segment.
func (a *assembler) here() uint32 {
	if a.inData {
		return isa.DataBase + uint32(len(a.data))
	}
	return isa.TextBase + uint32(4*len(a.text))
}

func (a *assembler) doLine(raw string) error {
	line := stripComment(raw)
	// Peel off any leading labels.
	for {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			return nil
		}
		colon := strings.Index(trimmed, ":")
		if colon < 0 || !isIdent(trimmed[:colon]) {
			line = trimmed
			break
		}
		name := trimmed[:colon]
		if _, dup := a.symbols[name]; dup {
			return a.errf("duplicate label %q", name)
		}
		a.symbols[name] = a.here()
		line = trimmed[colon+1:]
	}
	if strings.HasPrefix(line, ".") {
		return a.doDirective(line)
	}
	return a.doInstruction(line)
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++
			}
		case '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits on commas that are outside quotes and parens.
func splitOperands(s string) []string {
	var out []string
	depth, inStr, start := 0, false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++
			}
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}
