package asm

import (
	"strings"

	"repro/internal/isa"
)

// operand is a parsed instruction operand.
type operand struct {
	kind   opKind
	reg    int
	imm    int64
	sym    string
	addend int32
	base   int // for mem operands: offset(base)
}

type opKind int

const (
	opReg opKind = iota
	opImm
	opSym
	opMem // imm(base) or sym(base)
)

func (a *assembler) parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return operand{}, a.errf("empty operand")
	case s[0] == '$':
		r, ok := isa.RegByName(s[1:])
		if !ok {
			return operand{}, a.errf("unknown register %q", s)
		}
		return operand{kind: opReg, reg: r}, nil
	case strings.HasSuffix(s, ")"):
		open := strings.Index(s, "(")
		if open < 0 {
			return operand{}, a.errf("unbalanced parens in %q", s)
		}
		baseStr := strings.TrimSpace(s[open+1 : len(s)-1])
		if baseStr == "" || baseStr[0] != '$' {
			return operand{}, a.errf("memory operand base must be a register in %q", s)
		}
		base, ok := isa.RegByName(baseStr[1:])
		if !ok {
			return operand{}, a.errf("unknown base register %q", baseStr)
		}
		offStr := strings.TrimSpace(s[:open])
		if offStr == "" {
			return operand{kind: opMem, imm: 0, base: base}, nil
		}
		if v, err := parseInt(offStr); err == nil {
			return operand{kind: opMem, imm: v, base: base}, nil
		}
		if sym, addend, ok := parseSymRef(offStr); ok {
			return operand{kind: opMem, sym: sym, addend: addend, base: base}, nil
		}
		return operand{}, a.errf("bad memory offset %q", offStr)
	default:
		if v, err := parseInt(s); err == nil {
			return operand{kind: opImm, imm: v}, nil
		}
		if sym, addend, ok := parseSymRef(s); ok {
			return operand{kind: opSym, sym: sym, addend: addend}, nil
		}
		return operand{}, a.errf("bad operand %q", s)
	}
}

// emit appends an encoded instruction word.
func (a *assembler) emit(word uint32) error {
	if a.inData {
		return a.errf("instruction in .data segment")
	}
	a.text = append(a.text, word)
	return nil
}

// emitReloc appends a word carrying a relocation against sym.
func (a *assembler) emitReloc(word uint32, kind relocKind, sym string, addend int32) error {
	a.relocs = append(a.relocs, reloc{
		kind: kind, symbol: sym, index: len(a.text), line: a.line, addend: addend,
	})
	return a.emit(word)
}

func (a *assembler) doInstruction(line string) error {
	fields := strings.SplitN(line, " ", 2)
	mnemonic := strings.ToLower(strings.TrimSpace(fields[0]))
	var ops []operand
	if len(fields) == 2 {
		for _, s := range splitOperands(fields[1]) {
			op, err := a.parseOperand(s)
			if err != nil {
				return err
			}
			ops = append(ops, op)
		}
	}
	return a.encode(mnemonic, ops)
}

// operand-shape helpers

func (a *assembler) wantRegs(m string, ops []operand, n int) ([]int, error) {
	if len(ops) != n {
		return nil, a.errf("%s wants %d operands, got %d", m, n, len(ops))
	}
	regs := make([]int, n)
	for i, op := range ops {
		if op.kind != opReg {
			return nil, a.errf("%s operand %d must be a register", m, i+1)
		}
		regs[i] = op.reg
	}
	return regs, nil
}

func (a *assembler) immIn(m string, v int64, signed bool) (uint32, error) {
	if signed {
		if v < -32768 || v > 32767 {
			return 0, a.errf("%s immediate %d out of signed 16-bit range", m, v)
		}
		return uint32(v) & 0xffff, nil
	}
	if v < 0 || v > 0xffff {
		return 0, a.errf("%s immediate %d out of unsigned 16-bit range", m, v)
	}
	return uint32(v), nil
}

// rType encodes "op $rd, $rs, $rt".
func (a *assembler) rType(m string, ops []operand, funct uint32) error {
	regs, err := a.wantRegs(m, ops, 3)
	if err != nil {
		return err
	}
	return a.emit(isa.EncodeR(funct, regs[0], regs[1], regs[2], 0))
}

// iTypeArith encodes "op $rt, $rs, imm".
func (a *assembler) iTypeArith(m string, ops []operand, op uint32, signed bool) error {
	if len(ops) != 3 || ops[0].kind != opReg || ops[1].kind != opReg || ops[2].kind != opImm {
		return a.errf("%s wants $rt, $rs, imm", m)
	}
	imm, err := a.immIn(m, ops[2].imm, signed)
	if err != nil {
		return err
	}
	return a.emit(isa.EncodeI(op, ops[0].reg, ops[1].reg, imm))
}

// shift encodes "op $rd, $rt, shamt".
func (a *assembler) shift(m string, ops []operand, funct uint32) error {
	if len(ops) != 3 || ops[0].kind != opReg || ops[1].kind != opReg || ops[2].kind != opImm {
		return a.errf("%s wants $rd, $rt, shamt", m)
	}
	if ops[2].imm < 0 || ops[2].imm > 31 {
		return a.errf("%s shift amount out of range", m)
	}
	return a.emit(isa.EncodeR(funct, ops[0].reg, 0, ops[1].reg, uint32(ops[2].imm)))
}

// shiftV encodes "op $rd, $rt, $rs" (shift amount in $rs).
func (a *assembler) shiftV(m string, ops []operand, funct uint32) error {
	regs, err := a.wantRegs(m, ops, 3)
	if err != nil {
		return err
	}
	return a.emit(isa.EncodeR(funct, regs[0], regs[2], regs[1], 0))
}

// memOp encodes loads/stores "op $rt, off($base)" or "op $rt, label".
func (a *assembler) memOp(m string, ops []operand, op uint32) error {
	if len(ops) != 2 || ops[0].kind != opReg {
		return a.errf("%s wants $rt, address", m)
	}
	rt := ops[0].reg
	switch ops[1].kind {
	case opMem:
		if ops[1].sym != "" {
			// label(base): lui $at, hi(label); add $at,$at,$base; op $rt, lo($at)
			if err := a.emitReloc(isa.EncodeI(isa.OpLUI, isa.RegAT, 0, 0),
				relHi16Adj, ops[1].sym, ops[1].addend); err != nil {
				return err
			}
			if err := a.emit(isa.EncodeR(isa.FnADDU, isa.RegAT, isa.RegAT, ops[1].base, 0)); err != nil {
				return err
			}
			return a.emitReloc(isa.EncodeI(op, rt, isa.RegAT, 0),
				relLo16, ops[1].sym, ops[1].addend)
		}
		imm, err := a.immIn(m, ops[1].imm, true)
		if err != nil {
			return err
		}
		return a.emit(isa.EncodeI(op, rt, ops[1].base, imm))
	case opSym:
		// op $rt, label  →  lui $at, hi; op $rt, lo($at)
		if err := a.emitReloc(isa.EncodeI(isa.OpLUI, isa.RegAT, 0, 0),
			relHi16Adj, ops[1].sym, ops[1].addend); err != nil {
			return err
		}
		return a.emitReloc(isa.EncodeI(op, rt, isa.RegAT, 0),
			relLo16, ops[1].sym, ops[1].addend)
	default:
		return a.errf("%s wants a memory operand", m)
	}
}

// branch encodes "op $rs, $rt, label" style branches.
func (a *assembler) branch2(m string, ops []operand, op uint32) error {
	if len(ops) != 3 || ops[0].kind != opReg || ops[1].kind != opReg || ops[2].kind != opSym {
		return a.errf("%s wants $rs, $rt, label", m)
	}
	return a.emitReloc(isa.EncodeI(op, ops[1].reg, ops[0].reg, 0),
		relBranch, ops[2].sym, ops[2].addend)
}

// branch1 encodes single-register compare-to-zero branches.
func (a *assembler) branch1(m string, ops []operand, op uint32, rt int) error {
	if len(ops) != 2 || ops[0].kind != opReg || ops[1].kind != opSym {
		return a.errf("%s wants $rs, label", m)
	}
	return a.emitReloc(isa.EncodeI(op, rt, ops[0].reg, 0),
		relBranch, ops[1].sym, ops[1].addend)
}
