package asm

import (
	"bytes"
	"testing"
)

// FuzzAssemble checks that arbitrary source text never panics the
// assembler — it must either produce a program or a diagnostic.
func FuzzAssemble(f *testing.F) {
	f.Add("main: addiu $t0, $zero, 5\n")
	f.Add(".data\nx: .word 1, 2\n.text\nmain: lw $t0, x\n")
	f.Add("label without colon addu $1 $2")
	f.Add(".asciiz \"unterminated")
	f.Add("main: blt $t0, $t1, main\n.data\n.align 3\n.space 5\n")
	f.Add("\x00\xff\x7f:::")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err == nil && p == nil {
			t.Fatal("nil program without error")
		}
	})
}

// FuzzReadProgram checks the object reader against corrupt bytes.
func FuzzReadProgram(f *testing.F) {
	good, err := Assemble(".data\nx: .word 7\n.text\nmain: lw $t0, x\nj main\n")
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProgram(&buf, good); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("MRX1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := ReadProgram(bytes.NewReader(raw))
		if err == nil {
			// Whatever parsed must round-trip stably.
			var out bytes.Buffer
			if err := WriteProgram(&out, p); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}
