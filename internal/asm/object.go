package asm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Object file format ("MRX1")
//
// Assembled programs can be stored and reloaded without the source,
// mirroring the assembler → object → simulator flow of a real
// toolchain (SimpleScalar consumed precompiled binaries the same
// way). The format is deliberately simple:
//
//	magic   "MRX1"
//	entry   uvarint
//	ntext   uvarint, then ntext little-endian uint32 words
//	ndata   uvarint, then ndata raw bytes
//	nsyms   uvarint, then nsyms of { nameLen uvarint, name, addr uvarint }
//
// Symbols are stored sorted by name so encoding is deterministic.

const objMagic = "MRX1"

// ErrBadObject reports a malformed MRX1 stream.
var ErrBadObject = errors.New("asm: not an MRX1 object file")

// WriteProgram serializes p to w in the MRX1 object format.
func WriteProgram(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(objMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(p.Entry)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(p.Text))); err != nil {
		return err
	}
	for _, word := range p.Text {
		var wb [4]byte
		binary.LittleEndian.PutUint32(wb[:], word)
		if _, err := bw.Write(wb[:]); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(p.Data))); err != nil {
		return err
	}
	if _, err := bw.Write(p.Data); err != nil {
		return err
	}
	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	if err := writeUvarint(uint64(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		if err := writeUvarint(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := writeUvarint(uint64(p.Symbols[name])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadProgram deserializes an MRX1 object.
func ReadProgram(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(objMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("asm: reading object magic: %w", err)
	}
	if string(magic) != objMagic {
		return nil, ErrBadObject
	}
	const maxReasonable = 1 << 28
	readCount := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("asm: reading %s: %w", what, err)
		}
		if v > maxReasonable {
			return 0, fmt.Errorf("asm: implausible %s %d", what, v)
		}
		return v, nil
	}
	entry, err := readCount("entry")
	if err != nil {
		return nil, err
	}
	p := &Program{Entry: uint32(entry), Symbols: make(map[string]uint32)}
	ntext, err := readCount("text size")
	if err != nil {
		return nil, err
	}
	p.Text = make([]uint32, ntext)
	var wb [4]byte
	for i := range p.Text {
		if _, err := io.ReadFull(br, wb[:]); err != nil {
			return nil, fmt.Errorf("asm: reading text word %d: %w", i, err)
		}
		p.Text[i] = binary.LittleEndian.Uint32(wb[:])
	}
	ndata, err := readCount("data size")
	if err != nil {
		return nil, err
	}
	p.Data = make([]byte, ndata)
	if _, err := io.ReadFull(br, p.Data); err != nil {
		return nil, fmt.Errorf("asm: reading data: %w", err)
	}
	nsyms, err := readCount("symbol count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nsyms; i++ {
		nameLen, err := readCount("symbol name length")
		if err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("asm: reading symbol %d: %w", i, err)
		}
		addr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("asm: reading symbol %d address: %w", i, err)
		}
		p.Symbols[string(name)] = uint32(addr)
	}
	return p, nil
}
