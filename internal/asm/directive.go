package asm

import (
	"strconv"
	"strings"
)

func (a *assembler) doDirective(line string) error {
	fields := strings.SplitN(line, " ", 2)
	name := strings.TrimSpace(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch name {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".globl", ".global", ".ent", ".end":
		// accepted for source compatibility; no effect
	case ".word":
		return a.emitInts(rest, 4)
	case ".half":
		return a.emitInts(rest, 2)
	case ".byte":
		return a.emitInts(rest, 1)
	case ".space":
		n, err := strconv.ParseUint(rest, 0, 32)
		if err != nil {
			return a.errf(".space needs a size: %v", err)
		}
		if !a.inData {
			return a.errf(".space only allowed in .data")
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".align":
		n, err := strconv.ParseUint(rest, 0, 8)
		if err != nil || n > 12 {
			return a.errf(".align needs an exponent 0..12")
		}
		if !a.inData {
			return a.errf(".align only allowed in .data")
		}
		align := uint32(1) << n
		for uint32(len(a.data))%align != 0 {
			a.data = append(a.data, 0)
		}
	case ".asciiz", ".ascii":
		s, err := unquote(rest)
		if err != nil {
			return a.errf("%s: %v", name, err)
		}
		if !a.inData {
			return a.errf("%s only allowed in .data", name)
		}
		a.data = append(a.data, s...)
		if name == ".asciiz" {
			a.data = append(a.data, 0)
		}
	default:
		return a.errf("unknown directive %q", name)
	}
	return nil
}

// emitInts handles .word/.half/.byte operand lists. A .word operand
// may be a label, emitting a relWord relocation.
func (a *assembler) emitInts(rest string, size int) error {
	if !a.inData {
		return a.errf("data directives only allowed in .data")
	}
	for _, op := range splitOperands(rest) {
		if v, err := parseInt(op); err == nil {
			a.appendLE(uint32(v), size)
			continue
		}
		sym, addend, ok := parseSymRef(op)
		if !ok || size != 4 {
			return a.errf("bad integer operand %q", op)
		}
		a.relocs = append(a.relocs, reloc{
			kind: relWord, symbol: sym, index: len(a.data), line: a.line, addend: addend,
		})
		a.appendLE(0, 4)
	}
	return nil
}

func (a *assembler) appendLE(v uint32, size int) {
	for i := 0; i < size; i++ {
		a.data = append(a.data, byte(v>>(8*i)))
	}
}

// parseInt parses decimal, hex (0x), octal (0o), binary (0b), negative
// and character ('c') literals.
func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := unquote("\"" + s[1:len(s)-1] + "\"")
		if err != nil || len(body) != 1 {
			return 0, strconv.ErrSyntax
		}
		return int64(body[0]), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow large unsigned constants like 0xffffffff.
		u, uerr := strconv.ParseUint(s, 0, 32)
		if uerr != nil {
			return 0, err
		}
		return int64(u), nil
	}
	return v, nil
}

// parseSymRef parses "label", "label+4" or "label-8".
func parseSymRef(s string) (sym string, addend int32, ok bool) {
	s = strings.TrimSpace(s)
	for _, sep := range []string{"+", "-"} {
		if i := strings.Index(s, sep); i > 0 {
			off, err := parseInt(s[i+1:])
			if err != nil {
				return "", 0, false
			}
			if sep == "-" {
				off = -off
			}
			if !isIdent(s[:i]) {
				return "", 0, false
			}
			return s[:i], int32(off), true
		}
	}
	if !isIdent(s) {
		return "", 0, false
	}
	return s, 0, true
}

// unquote interprets a double-quoted string literal with the escapes
// \n \t \r \0 \\ \".
func unquote(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, strconv.ErrSyntax
	}
	body := s[1 : len(s)-1]
	var out []byte
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, strconv.ErrSyntax
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case 'r':
			out = append(out, '\r')
		case '0':
			out = append(out, 0)
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		default:
			return nil, strconv.ErrSyntax
		}
	}
	return out, nil
}
