package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// These tests exercise the encoder paths and diagnostics that the
// happy-path programs in asm_test.go do not reach.

func TestAllNativeMnemonicsAssemble(t *testing.T) {
	// One instance of every native instruction; decoding each word
	// back must reproduce the mnemonic's opcode/funct.
	src := `
	main:
		add   $t0, $t1, $t2
		addu  $t0, $t1, $t2
		sub   $t0, $t1, $t2
		subu  $t0, $t1, $t2
		and   $t0, $t1, $t2
		or    $t0, $t1, $t2
		xor   $t0, $t1, $t2
		nor   $t0, $t1, $t2
		slt   $t0, $t1, $t2
		sltu  $t0, $t1, $t2
		sll   $t0, $t1, 3
		srl   $t0, $t1, 3
		sra   $t0, $t1, 3
		sllv  $t0, $t1, $t2
		srlv  $t0, $t1, $t2
		srav  $t0, $t1, $t2
		mult  $t1, $t2
		multu $t1, $t2
		div2  $t1, $t2
		divu  $t1, $t2
		mfhi  $t0
		mflo  $t0
		mthi  $t0
		mtlo  $t0
		addi  $t0, $t1, -7
		addiu $t0, $t1, -7
		slti  $t0, $t1, 9
		sltiu $t0, $t1, 9
		andi  $t0, $t1, 9
		ori   $t0, $t1, 9
		xori  $t0, $t1, 9
		lui   $t0, 9
		lw    $t0, 0($sp)
		lh    $t0, 0($sp)
		lhu   $t0, 0($sp)
		lb    $t0, 0($sp)
		lbu   $t0, 0($sp)
		sw    $t0, 0($sp)
		sh    $t0, 0($sp)
		sb    $t0, 0($sp)
		beq   $t0, $t1, main
		bne   $t0, $t1, main
		blez  $t0, main
		bgtz  $t0, main
		bltz  $t0, main
		bgez  $t0, main
		j     main
		jal   main
		jr    $ra
		jalr  $t0
		syscall
	`
	p := mustAsm(t, src)
	if len(p.Text) != 51 {
		t.Fatalf("assembled %d words, want 51", len(p.Text))
	}
	// Spot-check the variable shifts and the regimm branches.
	if isa.Decode(p.Text[13]).Funct != isa.FnSLLV {
		t.Error("sllv funct wrong")
	}
	in := isa.Decode(p.Text[13])
	// sllv $t0, $t1, $t2: rd=t0, rt=t1, rs=t2.
	if in.Rd != isa.RegT0 || in.Rt != isa.RegT1 || in.Rs != isa.RegT2 {
		t.Errorf("sllv fields: %+v", in)
	}
	if in := isa.Decode(p.Text[44]); in.Op != isa.OpRegImm || in.Rt != isa.RtBLTZ {
		t.Errorf("bltz encodes %+v", in)
	}
	if in := isa.Decode(p.Text[45]); in.Op != isa.OpRegImm || in.Rt != isa.RtBGEZ {
		t.Errorf("bgez encodes %+v", in)
	}
	if in := isa.Decode(p.Text[49]); in.Funct != isa.FnJALR || in.Rd != isa.RegRA {
		t.Errorf("jalr encodes %+v", in)
	}
}

func TestMoreDiagnostics(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"lui operands", "main: lui $t0, $t1", "lui wants"},
		{"lui range", "main: lui $t0, 0x10000", "out of unsigned 16-bit range"},
		{"shift operands", "main: sll $t0, 3, $t1", "wants $rd, $rt, shamt"},
		{"mem operand shape", "main: lw $t0, $t1", "wants a memory operand"},
		{"mem first reg", "main: lw 4($sp), $t0", "wants $rt, address"},
		{"mem offset range", "main: lw $t0, 40000($sp)", "out of signed 16-bit range"},
		{"branch shape", "main: beq $t0, 4, main", "wants $rs, $rt, label"},
		{"branch1 shape", "main: blez 4, main", "wants $rs, label"},
		{"j operand", "main: j $t0", "wants a label"},
		{"li shape", "main: li $t0, $t1", "li wants"},
		{"la shape", "main: la $t0, 5", "la wants"},
		{"b shape", "main: b $t0", "b wants"},
		{"beqz shape", "main: beqz 5, main", "beqz wants"},
		{"bnez shape", "main: bnez 5, main", "bnez wants"},
		{"blt shape", "main: blt $t0, 5, main", "wants $rs, $rt, label"},
		{"move shape", "main: move $t0", "wants 2 operands"},
		{"empty operand", "main: addu $t0, , $t1", "empty operand"},
		{"bad mem base", "main: lw $t0, 4(8)", "memory operand base"},
		{"bad base name", "main: lw $t0, 4($zz)", "unknown base register"},
		{"unbalanced", "main: lw $t0, 4$sp)", "unbalanced parens"},
		{"bad mem offset", "main: lw $t0, x+y($sp)", "bad memory offset"},
		{"iType shape", "main: addiu $t0, 4, 4", "wants $rt, $rs, imm"},
		{"mult operand", "main: mult $t0, 7", "operand 2 must be a register"},
		{"syscall operands", "main: syscall $v0", "takes no operands"},
		{"half with label", ".data\nx: .half x", "bad integer operand"},
		{"space missing", ".data\n.space", ".space needs a size"},
		{"align range", ".data\n.align 99", ".align needs an exponent"},
		{"asciiz quote", ".data\n.asciiz hello", ".asciiz"},
		{"bad escape", `.data` + "\n" + `.asciiz "a\q"`, ".asciiz"},
		{"space in text", ".text\n.space 4", "only allowed in .data"},
		{"align in text", ".text\n.align 2", "only allowed in .data"},
		{"ascii in text", ".text\n.ascii \"x\"", "only allowed in .data"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestBranchTargetDiagnostics(t *testing.T) {
	// A branch to a data label is misaligned or out of range.
	_, err := Assemble(".data\n.space 2\nx: .word 1\n.text\nmain: beq $t0, $t1, x\n")
	if err == nil {
		t.Fatal("branch into data should fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "misaligned") && !strings.Contains(msg, "out of range") {
		t.Errorf("unexpected diagnostic: %q", msg)
	}
}

func TestIsIdentForms(t *testing.T) {
	good := []string{"a", "foo_bar", "x9", "L.sub", "_start"}
	bad := []string{"", "9x", "a-b", "a b", "a$"}
	for _, s := range good {
		if !isIdent(s) {
			t.Errorf("isIdent(%q) = false", s)
		}
	}
	for _, s := range bad {
		if isIdent(s) {
			t.Errorf("isIdent(%q) = true", s)
		}
	}
}

func TestParseSymRefForms(t *testing.T) {
	sym, add, ok := parseSymRef("label+4")
	if !ok || sym != "label" || add != 4 {
		t.Errorf("label+4 -> %q %d %v", sym, add, ok)
	}
	sym, add, ok = parseSymRef("label-8")
	if !ok || sym != "label" || add != -8 {
		t.Errorf("label-8 -> %q %d %v", sym, add, ok)
	}
	if _, _, ok := parseSymRef("label+x"); ok {
		t.Error("non-numeric addend accepted")
	}
	if _, _, ok := parseSymRef("9label"); ok {
		t.Error("bad identifier accepted")
	}
	if _, _, ok := parseSymRef("a+b+c"); ok {
		t.Error("double addend accepted")
	}
}

func TestUnquoteEscapes(t *testing.T) {
	got, err := unquote(`"a\t\r\0\\\"z"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{'a', '\t', '\r', 0, '\\', '"', 'z'}
	if string(got) != string(want) {
		t.Errorf("unquote = %q, want %q", got, want)
	}
	for _, bad := range []string{`"unterminated`, `noquotes`, `"trail\"`, `""x`} {
		if _, err := unquote(bad); err == nil && bad != `""x` {
			t.Errorf("unquote(%q) did not fail", bad)
		}
	}
}

func TestGlobalDirectivesIgnored(t *testing.T) {
	p := mustAsm(t, ".globl main\n.ent main\nmain: nop\n.end main\n")
	if len(p.Text) != 1 {
		t.Errorf("text = %d words", len(p.Text))
	}
}

func TestWordWithSymbolAddend(t *testing.T) {
	p := mustAsm(t, ".data\narr: .word 1,2,3\nptr: .word arr+8\n")
	off := p.Symbols["ptr"] - isa.DataBase
	got := uint32(p.Data[off]) | uint32(p.Data[off+1])<<8 |
		uint32(p.Data[off+2])<<16 | uint32(p.Data[off+3])<<24
	if got != isa.DataBase+8 {
		t.Errorf("ptr = %#x, want %#x", got, isa.DataBase+8)
	}
}

func TestNegativeMemOffsetWithLabelBase(t *testing.T) {
	p := mustAsm(t, ".data\ntab: .space 64\n.text\nmain: lw $t0, tab+4($t1)\n")
	// Expansion: lui $at / addu $at,$at,$t1 / lw $t0, lo($at)
	if len(p.Text) != 3 {
		t.Fatalf("expansion has %d words", len(p.Text))
	}
	lui := isa.Decode(p.Text[0])
	lw := isa.Decode(p.Text[2])
	addr := lui.Imm<<16 + uint32(int32(int16(lw.Imm)))
	if addr != isa.DataBase+4 {
		t.Errorf("address %#x, want %#x", addr, isa.DataBase+4)
	}
	if mid := isa.Decode(p.Text[1]); mid.Funct != isa.FnADDU || mid.Rt != isa.RegT1 {
		t.Errorf("base add = %+v", mid)
	}
}

func TestEmptyMemOffset(t *testing.T) {
	p := mustAsm(t, "main: lw $t0, ($sp)\n")
	in := isa.Decode(p.Text[0])
	if in.Imm != 0 || in.Rs != isa.RegSP {
		t.Errorf("($sp) = %+v", in)
	}
}
