package asm

import (
	"bytes"
	"reflect"
	"testing"
)

func TestObjectRoundTrip(t *testing.T) {
	p := mustAsm(t, `
	.data
	x:	.word 1, 2, 3
	s:	.asciiz "hi"
	.text
	main:
		la $t0, x
		lw $t1, 0($t0)
	loop:	addiu $t1, $t1, 1
		bne $t1, $t2, loop
		li $v0, 10
		syscall
	`)
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Text, p.Text) {
		t.Error("text differs")
	}
	if !bytes.Equal(got.Data, p.Data) {
		t.Error("data differs")
	}
	if got.Entry != p.Entry {
		t.Errorf("entry %#x != %#x", got.Entry, p.Entry)
	}
	if !reflect.DeepEqual(got.Symbols, p.Symbols) {
		t.Errorf("symbols differ: %v vs %v", got.Symbols, p.Symbols)
	}
}

func TestObjectEmptyProgram(t *testing.T) {
	p := &Program{Entry: 0x400000, Symbols: map[string]uint32{}}
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Text) != 0 || len(got.Data) != 0 || len(got.Symbols) != 0 {
		t.Errorf("empty program round trip: %+v", got)
	}
}

func TestObjectDeterministicEncoding(t *testing.T) {
	p := mustAsm(t, ".data\nb: .word 1\na: .word 2\nc: .word 3\n.text\nmain: nop\n")
	var one, two bytes.Buffer
	if err := WriteProgram(&one, p); err != nil {
		t.Fatal(err)
	}
	if err := WriteProgram(&two, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Error("encoding not deterministic")
	}
}

func TestObjectBadMagic(t *testing.T) {
	if _, err := ReadProgram(bytes.NewReader([]byte("NOPE1234"))); err != ErrBadObject {
		t.Errorf("err = %v, want ErrBadObject", err)
	}
}

func TestObjectTruncated(t *testing.T) {
	p := mustAsm(t, ".data\nx: .word 1\n.text\nmain: nop\nj main\n")
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut += 3 {
		if _, err := ReadProgram(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(raw))
		}
	}
}

func TestObjectRejectsImplausibleSizes(t *testing.T) {
	// magic + entry 0 + absurd text count.
	raw := append([]byte(objMagic), 0x00, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := ReadProgram(bytes.NewReader(raw)); err == nil {
		t.Error("implausible text size accepted")
	}
}
