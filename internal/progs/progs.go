// Package progs contains the benchmark suite: eight synthetic MR32
// assembly programs standing in for the paper's SPECint95 benchmarks,
// plus the norm() micro-benchmark from the paper's Figure 5.
//
// Each program imitates the dominant value-production behaviour of its
// SPECint95 namesake — the mixture of constant patterns (compare
// results, repeatedly loaded globals), stride patterns (loop induction
// variables, address arithmetic) and repeating non-stride context
// patterns (pointer chasing over stable structures, interpreter
// dispatch) that the paper's analysis rests on. All programs are
// deterministic: data is generated internally with a seeded xorshift
// PRNG written in MR32 assembly.
//
// The eight SPECint stand-ins run unbounded outer loops and are meant
// to be truncated by the simulator's instruction budget, mirroring the
// paper's "first 200 million instructions" methodology; norm runs to
// completion.
package progs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/asm"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Benchmark describes one suite entry (the repo's analogue of the
// paper's Table 1).
type Benchmark struct {
	Name string
	// Model names the SPECint95 program this benchmark stands in for.
	Model string
	// Description summarizes the workload.
	Description string
	// Source is the MR32 assembly text.
	Source string
	// SelfTerminating is true for programs that exit on their own
	// (norm); the others run until the instruction budget expires.
	SelfTerminating bool
}

// registry of all benchmarks, populated by the per-program files.
var registry = map[string]*Benchmark{}

func register(b *Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("progs: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// SPECNames lists the eight SPECint95 stand-ins in the paper's order.
func SPECNames() []string {
	return []string{"cc1", "compress", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"}
}

// Names lists every registered benchmark, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the benchmark with the given name.
func Get(name string) (*Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("progs: unknown benchmark %q", name)
	}
	return b, nil
}

var (
	progMu    sync.Mutex
	progCache = map[string]*asm.Program{}
)

// Program returns the assembled program for a benchmark, cached.
func Program(name string) (*asm.Program, error) {
	b, err := Get(name)
	if err != nil {
		return nil, err
	}
	progMu.Lock()
	defer progMu.Unlock()
	if p, ok := progCache[name]; ok {
		return p, nil
	}
	p, err := asm.Assemble(b.Source)
	if err != nil {
		return nil, fmt.Errorf("progs: assembling %s: %w", name, err)
	}
	progCache[name] = p
	return p, nil
}

// TraceFor runs a benchmark under the given instruction budget
// (0 = to completion; only sensible for self-terminating programs)
// and returns its value trace.
func TraceFor(name string, budget uint64) (trace.Trace, error) {
	p, err := Program(name)
	if err != nil {
		return nil, err
	}
	tr, err := vm.Trace(p, budget)
	if err != nil {
		return nil, fmt.Errorf("progs: running %s: %w", name, err)
	}
	return tr, nil
}

// xorshift32 is the assembly sequence used by every program to advance
// the PRNG in $s0, clobbering the named temporary. Kept as a Go
// constant so the programs stay textually consistent.
const xorshift = `
	sll  $t9, $s0, 13
	xor  $s0, $s0, $t9
	srl  $t9, $s0, 17
	xor  $s0, $s0, $t9
	sll  $t9, $s0, 5
	xor  $s0, $s0, $t9
`
