package progs

// norm is the paper's Figure 5 micro-benchmark: each row of a
// 200x100 matrix is scaled by the largest absolute value in the row.
// The paper uses it to show how a function "full of stride patterns"
// (the induction variables i and j, the compiler temporaries j*4,
// &matrix[i], &matrix[i][j], and the near-constant slt results)
// floods the FCM level-2 table. The MR32 version uses integer
// division instead of floating point — the value streams of interest
// (induction variables, addresses, compare results) are identical.
const normSrc = `
# norm: scale each matrix row by its maximal absolute element.
	.data
matrix:	.space 80000          # 200 x 100 words

	.text
main:
	li   $s0, 2463534242      # PRNG state
	la   $s1, matrix

	# Fill the matrix with values in [1, 16384].
	li   $s2, 0               # element index
	li   $s3, 20000
fill:
` + xorshift + `
	andi $t0, $s0, 0x3fff
	addiu $t0, $t0, 1
	sll  $t1, $s2, 2
	addu $t1, $s1, $t1
	sw   $t0, 0($t1)
	addiu $s2, $s2, 1
	bne  $s2, $s3, fill

	li   $s4, 0               # i = row index
rows:
	li   $t0, 100
	mul  $s7, $s4, $t0        # row base element index i*100
	addiu $t2, $s7, 99
	sll  $t2, $t2, 2
	addu $t2, $s1, $t2
	lw   $s5, 0($t2)          # max = matrix[i][99]

	li   $s6, 0               # j
maxloop:
	addu $t3, $s7, $s6
	sll  $t3, $t3, 2
	addu $t3, $s1, $t3
	lw   $t4, 0($t3)
	bgez $t4, abspos
	neg  $t4, $t4
abspos:
	ble  $t4, $s5, nomax
	move $s5, $t4
nomax:
	addiu $s6, $s6, 1
	li   $t5, 99
	bne  $s6, $t5, maxloop

	bnez $s5, divrow          # if (max == 0) max = 1
	li   $s5, 1
divrow:
	li   $s6, 0               # j
divloop:
	addu $t3, $s7, $s6
	sll  $t3, $t3, 2
	addu $t3, $s1, $t3
	lw   $t4, 0($t3)
	div  $t6, $t4, $s5
	sw   $t6, 0($t3)
	addiu $s6, $s6, 1
	li   $t5, 100
	bne  $s6, $t5, divloop

	addiu $s4, $s4, 1
	li   $t5, 200
	bne  $s4, $t5, rows

	li   $v0, 10
	syscall
`

func init() {
	register(&Benchmark{
		Name:            "norm",
		Model:           "Figure 5 micro-benchmark",
		Description:     "row normalization of a 200x100 matrix; saturated with stride patterns",
		Source:          normSrc,
		SelfTerminating: true,
	})
}
