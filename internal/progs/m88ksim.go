package progs

// m88ksim stands in for SPECint95 124.m88ksim (a Motorola 88100
// simulator). Like the original, it is an interpreter: a
// fetch-decode-dispatch-execute loop over a small embedded "guest"
// program for a 16-register toy ISA. Interpreters are the canonical
// source of repeating non-stride context patterns — the fetched
// instruction words, decoded fields and guest register values recur
// in fixed sequences that only a context predictor can capture.
//
// Guest encoding: op = bits 31:28, rd = 27:24, rs = 23:20,
// imm = 15:0 (signed). Ops: 0 addi, 1 add, 2 sub, 3 xor, 4 blt
// (vpc += 1+imm when vrd < vrs), 5 load (vrd = data[vrs&255]),
// 6 store (data[vrs&255] = vrd), 7 jmp (vpc = imm), 8 shr.
//
// The guest program sums and scrambles a 64-element window of the
// data array forever:
//
//	0: addi v4, v0, 64     ; limit
//	1: addi v1, v0, 0      ; i = 0
//	2: addi v2, v0, 0      ; sum = 0
//	3: load v3, v1         ; v3 = data[i]
//	4: add  v2, v3         ; sum += v3
//	5: xor  v5, v3         ; scramble accumulator
//	6: addi v1, v1, 1      ; i++
//	7: blt  v1, v4, -5     ; loop to 3
//	8: shr  v6, v2, 3
//	9: store v6, v1
//	10: addi v7, v7, 1     ; epoch counter
//	11: jmp 1
const m88ksimSrc = `
# m88ksim: toy-ISA interpreter (fetch / decode / dispatch / execute).
	.data
vregs:	.space 64                  # 16 guest registers
vdata:	.space 1024                # 256-word guest data memory
prog:
	.word 0x04000040
	.word 0x01000000
	.word 0x02000000
	.word 0x53100000
	.word 0x12300000
	.word 0x35300000
	.word 0x01100001
	.word 0x414ffffb
	.word 0x86200003
	.word 0x66100000
	.word 0x07700001
	.word 0x70000001

	.text
main:
	li   $s0, 362436069            # PRNG state
	li   $t0, 0
	li   $t8, 256
vfill:
` + xorshift + `
	andi $t1, $s0, 0xffff
	sll  $t2, $t0, 2
	sw   $t1, vdata($t2)
	addiu $t0, $t0, 1
	bne  $t0, $t8, vfill

	li   $s3, 0                    # guest vpc
step:
	sll  $t0, $s3, 2
	lw   $t1, prog($t0)            # fetch
	addiu $s3, $s3, 1              # default next vpc
	srl  $t2, $t1, 28              # op
	srl  $t3, $t1, 24
	andi $t3, $t3, 0xf             # rd
	srl  $t4, $t1, 20
	andi $t4, $t4, 0xf             # rs
	sll  $t5, $t1, 16
	sra  $t5, $t5, 16              # imm, sign-extended
	sll  $t6, $t3, 2               # rd byte offset
	sll  $t7, $t4, 2               # rs byte offset
	lw   $s4, vregs($t7)           # vrs value

	beqz $t2, op_addi
	li   $s5, 1
	beq  $t2, $s5, op_add
	li   $s5, 2
	beq  $t2, $s5, op_sub
	li   $s5, 3
	beq  $t2, $s5, op_xor
	li   $s5, 4
	beq  $t2, $s5, op_blt
	li   $s5, 5
	beq  $t2, $s5, op_load
	li   $s5, 6
	beq  $t2, $s5, op_store
	li   $s5, 7
	beq  $t2, $s5, op_jmp
	li   $s5, 8
	beq  $t2, $s5, op_shr
	b    step                      # unknown op: skip

op_addi:
	addu $t0, $s4, $t5
	sw   $t0, vregs($t6)
	b    step
op_add:
	lw   $t0, vregs($t6)
	addu $t0, $t0, $s4
	sw   $t0, vregs($t6)
	b    step
op_sub:
	lw   $t0, vregs($t6)
	subu $t0, $t0, $s4
	sw   $t0, vregs($t6)
	b    step
op_xor:
	lw   $t0, vregs($t6)
	xor  $t0, $t0, $s4
	sw   $t0, vregs($t6)
	b    step
op_blt:
	lw   $t0, vregs($t6)
	bge  $t0, $s4, step
	addu $s3, $s3, $t5             # vpc = vpc+1+imm
	b    step
op_load:
	andi $t0, $s4, 255
	sll  $t0, $t0, 2
	lw   $t1, vdata($t0)
	sw   $t1, vregs($t6)
	b    step
op_store:
	andi $t0, $s4, 255
	sll  $t0, $t0, 2
	lw   $t1, vregs($t6)
	sw   $t1, vdata($t0)
	b    step
op_jmp:
	move $s3, $t5
	b    step
op_shr:
	andi $t0, $t5, 31
	srlv $t1, $s4, $t0
	sw   $t1, vregs($t6)
	b    step
`

func init() {
	register(&Benchmark{
		Name:        "m88ksim",
		Model:       "SPECint95 124.m88ksim",
		Description: "toy-ISA interpreter: fetch/decode/dispatch loop over a guest program",
		Source:      m88ksimSrc,
	})
}
