package progs

// perl stands in for SPECint95 134.perl running the scrabbl.pl
// training input: string scanning and hash-table traffic. The
// program generates 7-letter words, scores them with a per-letter
// value table (byte loads + table lookups, like scrabble scoring),
// inserts the scores into a 64-bucket chained hash table built from a
// fixed node pool, and then probes the table. Chain walking produces
// pointer-chase context patterns; scoring produces table-lookup
// patterns; word generation produces semi-random values.
const perlSrc = `
# perl: word scoring + chained hash table (scrabble-style).
	.data
word:	.space 8                    # current 7-letter word + NUL
letval:	.word 1,3,3,2,1,4,2,4,1,8,5,1,3,1,1,3,10,1,1,1,1,4,4,8,4,10
buckets:	.space 256              # 64 chain heads
nodes:	.space 1536                 # 128 nodes x {key, score, next}

	.text
main:
	li   $s0, 2654435761            # PRNG state
	li   $s5, 0                     # next node index (round robin)
	li   $s6, 0                     # running score total

outer:
	# --- generate a 7-letter word ---
	li   $t0, 0
wgen:
` + xorshift + `
	srl  $t1, $s0, 3
	li   $t2, 26
	rem  $t1, $t1, $t2
	addiu $t1, $t1, 'a'
	sb   $t1, word($t0)
	addiu $t0, $t0, 1
	li   $t2, 7
	bne  $t0, $t2, wgen
	sb   $zero, word($t0)

	# --- score it: sum letval[c-'a'] * (pos+1), and hash it ---
	li   $t0, 0                     # position
	li   $s1, 0                     # score
	li   $s2, 5381                  # word hash
score:
	lbu  $t1, word($t0)
	beqz $t1, scored
	addiu $t2, $t1, -97
	sll  $t2, $t2, 2
	lw   $t3, letval($t2)           # letter value
	addiu $t4, $t0, 1
	mul  $t3, $t3, $t4              # positional multiplier
	addu $s1, $s1, $t3
	sll  $t5, $s2, 5                # hash = hash*33 ^ c
	addu $t5, $t5, $s2
	xor  $s2, $t5, $t1
	addiu $t0, $t0, 1
	b    score
scored:
	addu $s6, $s6, $s1

	# --- insert into hash table: bucket = hash & 63 ---
	andi $t0, $s2, 63
	sll  $t0, $t0, 2                # bucket offset
	# grab the next pool node
	li   $t1, 12
	mul  $t2, $s5, $t1              # node byte offset
	addiu $s5, $s5, 1
	andi $s5, $s5, 127
	# node = {key, score, next=old head}
	sw   $s2, nodes($t2)
	addiu $t3, $t2, 4
	sw   $s1, nodes($t3)
	lw   $t4, buckets($t0)          # old head (absolute address or 0)
	addiu $t3, $t2, 8
	sw   $t4, nodes($t3)
	# head = &nodes[node]
	la   $t5, nodes
	addu $t5, $t5, $t2
	sw   $t5, buckets($t0)

	# --- probe: look up 4 random hashes, walking chains ---
	li   $s3, 0
probe:
` + xorshift + `
	andi $t0, $s0, 63
	sll  $t0, $t0, 2
	lw   $t1, buckets($t0)          # chain head
	li   $t2, 0                     # chain length
walk:
	beqz $t1, walked
	lw   $t3, 0($t1)                # key
	lw   $t4, 4($t1)                # score
	addu $s6, $s6, $t4
	addiu $t2, $t2, 1
	li   $t5, 16
	beq  $t2, $t5, walked           # bound chain walks
	lw   $t1, 8($t1)                # next
	b    walk
walked:
	addiu $s3, $s3, 1
	li   $t6, 4
	bne  $s3, $t6, probe

	b    outer
`

func init() {
	register(&Benchmark{
		Name:        "perl",
		Model:       "SPECint95 134.perl",
		Description: "word scoring and chained hash-table insert/probe (scrabble-style)",
		Source:      perlSrc,
	})
}
