package progs

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/vm"
)

func TestAllBenchmarksAssemble(t *testing.T) {
	for _, name := range Names() {
		if _, err := Program(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRegistryContents(t *testing.T) {
	if len(SPECNames()) != 8 {
		t.Fatal("expected 8 SPECint stand-ins")
	}
	for _, name := range SPECNames() {
		b, err := Get(name)
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		if b.SelfTerminating {
			t.Errorf("%s should run until the budget expires", name)
		}
		if b.Model == "" || b.Description == "" {
			t.Errorf("%s lacks Table-1 metadata", name)
		}
	}
	b, err := Get("norm")
	if err != nil || !b.SelfTerminating {
		t.Error("norm must exist and self-terminate")
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown benchmark did not error")
	}
}

func TestBenchmarksRunAndEmit(t *testing.T) {
	const budget = 300_000
	for _, name := range SPECNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, err := TraceFor(name, budget)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			// The paper's filter keeps a large fraction of instructions:
			// expect a healthy event rate and PC diversity.
			if len(tr) < budget/10 {
				t.Errorf("only %d events from %d instructions", len(tr), budget)
			}
			pcs := make(map[uint32]bool)
			for _, e := range tr {
				pcs[e.PC] = true
			}
			if len(pcs) < 20 {
				t.Errorf("only %d distinct PCs; program too trivial", len(pcs))
			}
		})
	}
}

func TestNormRunsToCompletion(t *testing.T) {
	tr, err := TraceFor("norm", 0)
	if err != nil {
		t.Fatalf("norm: %v", err)
	}
	if len(tr) < 100_000 {
		t.Errorf("norm trace has only %d events", len(tr))
	}
}

func TestNormIsStrideHeavy(t *testing.T) {
	// The whole point of Figure 5: most of norm's values should be
	// correctly predictable by a stride predictor.
	tr, err := TraceFor("norm", 0)
	if err != nil {
		t.Fatal(err)
	}
	type entry struct{ last, stride uint32 }
	table := make(map[uint32]*entry)
	var correct, total int
	for _, e := range tr {
		en := table[e.PC]
		if en == nil {
			en = &entry{}
			table[e.PC] = en
		}
		if en.last+en.stride == e.Value {
			correct++
		}
		total++
		en.stride = e.Value - en.last
		en.last = e.Value
	}
	if frac := float64(correct) / float64(total); frac < 0.5 {
		t.Errorf("stride-predictable fraction of norm = %.2f, want >= 0.5", frac)
	}
}

func TestTracesAreDeterministic(t *testing.T) {
	for _, name := range []string{"li", "m88ksim"} {
		a, err := TraceFor(name, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := TraceFor(name, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: event %d differs", name, i)
			}
		}
	}
}

func TestBenchmarksSustainLongRuns(t *testing.T) {
	// The unbounded programs must not fault even over longer budgets
	// (catches heap/table overflows that only appear later).
	if testing.Short() {
		t.Skip("long run")
	}
	for _, name := range SPECNames() {
		p, err := Program(name)
		if err != nil {
			t.Fatal(err)
		}
		c := vm.New(p, nil)
		if err := c.Run(3_000_000); err != vm.ErrBudget {
			t.Errorf("%s: err = %v, want budget expiry", name, err)
		}
	}
}

func TestValueMixVariesAcrossBenchmarks(t *testing.T) {
	// Sanity check that the suite spans different behaviours: the
	// stride-predictable fraction should differ substantially between
	// the most regular and the most irregular benchmark.
	frac := func(tr trace.Trace) float64 {
		type entry struct{ last, stride uint32 }
		table := make(map[uint32]*entry)
		var correct int
		for _, e := range tr {
			en := table[e.PC]
			if en == nil {
				en = &entry{}
				table[e.PC] = en
			}
			if en.last+en.stride == e.Value {
				correct++
			}
			en.stride = e.Value - en.last
			en.last = e.Value
		}
		return float64(correct) / float64(len(tr))
	}
	lo, hi := 2.0, -1.0
	for _, name := range SPECNames() {
		tr, err := TraceFor(name, 400_000)
		if err != nil {
			t.Fatal(err)
		}
		f := frac(tr)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
		t.Logf("%s: stride-predictable %.3f", name, f)
	}
	if hi-lo < 0.15 {
		t.Errorf("benchmarks too homogeneous: stride fractions span [%.2f, %.2f]", lo, hi)
	}
}
