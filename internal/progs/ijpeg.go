package progs

// ijpeg stands in for SPECint95 132.ijpeg (JPEG compression). Its
// kernel is the blocked integer transform: the image is processed in
// 8x8 blocks, each row put through a butterfly transform with small
// constant multipliers and then quantized by a constant table using
// integer division. This is multiply/divide-heavy code dominated by
// regular address strides, exactly the profile that makes ijpeg the
// biggest DFCM winner in the paper (Figure 10(b)).
const ijpegSrc = `
# ijpeg: 8x8 blocked integer transform + quantization over a 32x32 image.
	.data
image:	.space 1024                 # 32x32 bytes
work:	.space 32                   # one row of 8 words
coef:	.word 3, 5, 7, 9, 11, 13, 15, 17
quant:	.word 8, 11, 10, 16, 24, 40, 51, 61

	.text
main:
	li   $s0, 1013904223            # PRNG state

	# Random image.
	li   $t0, 0
	li   $t8, 1024
ifill:
` + xorshift + `
	andi $t1, $s0, 0xff
	sb   $t1, image($t0)
	addiu $t0, $t0, 1
	bne  $t0, $t8, ifill

	li   $s7, 0                     # frame checksum
outer:
	li   $s1, 0                     # block row (0..3)
brow:
	li   $s2, 0                     # block col (0..3)
bcol:
	li   $s3, 0                     # row within block (0..7)
prow:
	# row base = ((s1*8+s3)*32 + s2*8)
	sll  $t0, $s1, 3
	addu $t0, $t0, $s3
	sll  $t0, $t0, 5
	sll  $t1, $s2, 3
	addu $s4, $t0, $t1              # byte index of row start

	# load 8 pixels into work[] as words
	li   $t2, 0
ldrow:
	addu $t3, $s4, $t2
	lbu  $t4, image($t3)
	sll  $t5, $t2, 2
	sw   $t4, work($t5)
	addiu $t2, $t2, 1
	li   $t6, 8
	bne  $t2, $t6, ldrow

	# butterfly: t[k] = w[k] + w[7-k], u[k] = w[k] - w[7-k], k=0..3
	# out[k]   = (t[k] * coef[k])   >> 2   (even part)
	# out[k+4] = (u[k] * coef[k+4]) >> 2   (odd part)
	li   $t2, 0
bfly:
	sll  $t5, $t2, 2
	lw   $t3, work($t5)             # w[k]
	li   $t6, 7
	subu $t7, $t6, $t2
	sll  $t7, $t7, 2
	lw   $t4, work($t7)             # w[7-k]
	addu $t6, $t3, $t4              # t
	subu $t7, $t3, $t4              # u
	lw   $t3, coef($t5)
	mul  $t6, $t6, $t3              # even product
	sra  $t6, $t6, 2
	addiu $t5, $t5, 16
	lw   $t3, coef($t5)
	mul  $t7, $t7, $t3              # odd product
	sra  $t7, $t7, 2
	# quantize both by quant[k] / quant[k+4]
	sll  $t5, $t2, 2
	lw   $t3, quant($t5)
	div  $t6, $t6, $t3
	addiu $t5, $t5, 16
	lw   $t3, quant($t5)
	div  $t7, $t7, $t3
	addu $s7, $s7, $t6
	xor  $s7, $s7, $t7
	addiu $t2, $t2, 1
	li   $t6, 4
	bne  $t2, $t6, bfly

	addiu $s3, $s3, 1
	li   $t6, 8
	bne  $s3, $t6, prow
	addiu $s2, $s2, 1
	li   $t6, 4
	bne  $s2, $t6, bcol
	addiu $s1, $s1, 1
	li   $t6, 4
	bne  $s1, $t6, brow

	# mutate a diagonal stripe of the image, then next frame
	li   $t0, 0
mut:
	li   $t1, 33
	mul  $t2, $t0, $t1              # idx = k*33 (diagonal)
	andi $t2, $t2, 1023
	lbu  $t3, image($t2)
	addiu $t3, $t3, 7
	andi $t3, $t3, 0xff
	sb   $t3, image($t2)
	addiu $t0, $t0, 1
	li   $t1, 32
	bne  $t0, $t1, mut

	b    outer
`

func init() {
	register(&Benchmark{
		Name:        "ijpeg",
		Model:       "SPECint95 132.ijpeg",
		Description: "8x8 blocked integer transform and quantization over an image",
		Source:      ijpegSrc,
	})
}
