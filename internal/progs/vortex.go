package progs

// vortex stands in for SPECint95 147.vortex (an object-oriented
// in-memory database). The program maintains 512 fixed-size records
// and an open-addressing hash index over their ids, and runs a mixed
// transaction stream: keyed lookups (probe loops with data-dependent
// exit), field updates, and periodic record replacement followed by a
// full index rebuild (a long regular stride pass, like vortex's
// object-memory compaction).
const vortexSrc = `
# vortex: record store + open-addressing hash index, mixed transactions.
	.data
recs:	.space 8192                  # 512 records x {id, a, b, sum}
index:	.space 4096                  # 1024 slots holding recno+1 (0 = empty)

	.text
main:
	li   $s0, 1597334677             # PRNG state

	# Create 512 records with random ids and rebuild the index.
	li   $s1, 0                      # recno
mkrec:
` + xorshift + `
	srl  $t0, $s0, 4
	andi $t0, $t0, 0xffff
	ori  $t0, $t0, 1                 # id, never 0
	sll  $t1, $s1, 4                 # record byte offset
	sw   $t0, recs($t1)              # id
	andi $t2, $s0, 0xff
	addiu $t3, $t1, 4
	sw   $t2, recs($t3)              # a
	srl  $t4, $s0, 24
	addiu $t3, $t1, 8
	sw   $t4, recs($t3)              # b
	addu $t5, $t0, $t2
	addu $t5, $t5, $t4
	addiu $t3, $t1, 12
	sw   $t5, recs($t3)              # sum
	addiu $s1, $s1, 1
	li   $t6, 512
	bne  $s1, $t6, mkrec
	jal  rebuild

	li   $s6, 0                      # transaction counter
outer:
` + xorshift + `
	# pick a victim record to take an id from (so lookups mostly hit)
	srl  $t0, $s0, 9
	andi $t0, $t0, 511
	sll  $t1, $t0, 4
	lw   $s2, recs($t1)              # target id

	# --- lookup: probe the index ---
	li   $t2, 1023
	and  $t3, $s2, $t2               # slot = id & 1023
probe:
	sll  $t4, $t3, 2
	lw   $t5, index($t4)             # recno+1
	beqz $t5, missed
	addiu $t6, $t5, -1
	sll  $t7, $t6, 4
	lw   $s4, recs($t7)              # candidate id
	beq  $s4, $s2, found
	addiu $t3, $t3, 1
	andi $t3, $t3, 1023
	b    probe
found:
	# --- update: b += a, recompute sum ---
	addiu $t0, $t7, 4
	lw   $t1, recs($t0)              # a
	addiu $t0, $t7, 8
	lw   $t2, recs($t0)              # b
	addu $t2, $t2, $t1
	sw   $t2, recs($t0)
	lw   $t3, recs($t7)              # id
	addu $t4, $t3, $t1
	addu $t4, $t4, $t2
	addiu $t0, $t7, 12
	sw   $t4, recs($t0)              # sum
missed:
	addiu $s6, $s6, 1

	# every 64th transaction: replace a record and rebuild the index
	andi $t0, $s6, 63
	bnez $t0, outer
` + xorshift + `
	srl  $t1, $s0, 5
	andi $t1, $t1, 511               # recno to replace
	sll  $t2, $t1, 4
	srl  $t3, $s0, 13
	andi $t3, $t3, 0xffff
	ori  $t3, $t3, 1
	sw   $t3, recs($t2)              # new id
	jal  rebuild
	b    outer

# rebuild clears the index and reinserts all 512 records.
# Clobbers $t0..$t7.
rebuild:
	li   $t0, 0
	li   $t1, 1024
clr:
	sll  $t2, $t0, 2
	sw   $zero, index($t2)
	addiu $t0, $t0, 1
	bne  $t0, $t1, clr
	li   $t0, 0                      # recno
ins:
	sll  $t2, $t0, 4
	lw   $t3, recs($t2)              # id
	andi $t4, $t3, 1023              # slot
insprobe:
	sll  $t5, $t4, 2
	lw   $t6, index($t5)
	beqz $t6, insput
	addiu $t4, $t4, 1
	andi $t4, $t4, 1023
	b    insprobe
insput:
	addiu $t7, $t0, 1
	sw   $t7, index($t5)
	addiu $t0, $t0, 1
	li   $t1, 512
	bne  $t0, $t1, ins
	jr   $ra
`

func init() {
	register(&Benchmark{
		Name:        "vortex",
		Model:       "SPECint95 147.vortex",
		Description: "record store with open-addressing index: lookups, updates, rebuilds",
		Source:      vortexSrc,
	})
}
