package progs

// compress stands in for SPECint95 129.compress (LZW compression).
// Behavioural ingredients: byte-granular scans with unit strides, run
// detection with data-dependent compare results, a rolling hash, and
// hash-table probes whose hit/miss outcomes depend on the data — a
// mix of stride and hard-to-predict patterns. The program fills a
// 4 KiB buffer from a skewed 8-symbol alphabet (to create runs),
// RLE-compresses it, then LZ-style scans it with a rolling hash and a
// 256-entry match table, mutates the buffer, and repeats.
const compressSrc = `
# compress: RLE + rolling-hash match scan over pseudo-text.
	.data
buf:	.space 4096
out:	.space 8192
htab:	.space 1024               # 256 match-table entries

	.text
main:
	li   $s0, 88172645            # PRNG state
	la   $s1, buf
	la   $s2, out

	# Fill buf with a skewed 8-letter alphabet.
	li   $t0, 0
	li   $t8, 4096
fill:
` + xorshift + `
	andi $t2, $s0, 0x7
	addiu $t2, $t2, 'a'
	addu $t3, $s1, $t0
	sb   $t2, 0($t3)
	addiu $t0, $t0, 1
	bne  $t0, $t8, fill

outer:
	# --- pass 1: run-length encode buf into out ---
	li   $s3, 0                   # input index
	li   $s4, 0                   # output index
rle:
	addu $t0, $s1, $s3
	lbu  $t1, 0($t0)              # current byte
	li   $t2, 1                   # run length
run:
	addu $t3, $s3, $t2
	li   $t4, 4096
	bge  $t3, $t4, runend
	addu $t5, $s1, $t3
	lbu  $t6, 0($t5)
	bne  $t6, $t1, runend
	addiu $t2, $t2, 1
	li   $t7, 255
	blt  $t2, $t7, run
runend:
	addu $t5, $s2, $s4
	sb   $t1, 0($t5)
	sb   $t2, 1($t5)
	addiu $s4, $s4, 2
	addu $s3, $s3, $t2
	li   $t4, 4096
	blt  $s3, $t4, rle

	# --- pass 2: rolling hash + match table probes ---
	li   $s3, 0                   # index
	li   $s5, 0                   # hash
	li   $s6, 0                   # match count
	la   $s7, htab
hscan:
	addu $t0, $s1, $s3
	lbu  $t1, 0($t0)
	sll  $t2, $s5, 3              # hash = (hash<<3 ^ byte) & 0xff
	xor  $t2, $t2, $t1
	andi $s5, $t2, 0xff
	sll  $t3, $s5, 2
	addu $t3, $s7, $t3
	lw   $t4, 0($t3)              # table[hash]: last position
	sw   $s3, 0($t3)
	beqz $t4, nomatch
	# compare bytes at the two positions
	addu $t5, $s1, $t4
	lbu  $t6, 0($t5)
	bne  $t6, $t1, nomatch
	addiu $s6, $s6, 1
nomatch:
	addiu $s3, $s3, 1
	li   $t7, 4096
	bne  $s3, $t7, hscan

	# --- mutate 16 random buffer positions, then repeat ---
	li   $t0, 0
mut:
` + xorshift + `
	srl  $t1, $s0, 8
	andi $t1, $t1, 0xfff          # position
	andi $t2, $s0, 0x7
	addiu $t2, $t2, 'a'
	addu $t3, $s1, $t1
	sb   $t2, 0($t3)
	addiu $t0, $t0, 1
	li   $t4, 16
	bne  $t0, $t4, mut

	b    outer
`

func init() {
	register(&Benchmark{
		Name:        "compress",
		Model:       "SPECint95 129.compress",
		Description: "RLE + rolling-hash match scanning over skewed pseudo-text",
		Source:      compressSrc,
	})
}
