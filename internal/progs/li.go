package progs

// li stands in for SPECint95 "li" (a Lisp interpreter). Its dominant
// behaviour is pointer chasing over heap-allocated cons cells whose
// addresses recur across interpreter cycles — repeating non-stride
// context patterns — plus list-length induction variables and compare
// results. The program builds a 256-cell list on the sbrk heap and
// then loops: sum the values, reverse the list in place, search for a
// key, and mutate a random cell.
const liSrc = `
# li: cons-cell list workout (sum / reverse / assoc / mutate).
	.text
main:
	li   $a0, 2048            # 256 cells x 8 bytes
	li   $v0, 9
	syscall                   # $v0 = heap base
	move $s2, $v0             # cell region base (fixed)
	move $s1, $v0             # current list head
	li   $s0, 123456789       # PRNG state

	# Build the list: cell i = { value, next }.
	li   $t0, 0
build:
	sll  $t1, $t0, 3
	addu $t1, $s2, $t1
` + xorshift + `
	andi $t2, $s0, 1023
	sw   $t2, 0($t1)          # value
	addiu $t3, $t0, 1
	li   $t4, 256
	beq  $t3, $t4, lastcell
	sll  $t5, $t3, 3
	addu $t5, $s2, $t5
	sw   $t5, 4($t1)          # next = address of cell i+1
	b    buildnext
lastcell:
	sw   $zero, 4($t1)
buildnext:
	addiu $t0, $t0, 1
	li   $t4, 256
	bne  $t0, $t4, build

outer:
	# --- sum the list (pointer chase) ---
	move $t0, $s1             # p
	li   $t1, 0               # sum
	li   $t2, 0               # length
sum:
	beqz $t0, sumdone
	lw   $t3, 0($t0)
	addu $t1, $t1, $t3
	addiu $t2, $t2, 1
	lw   $t0, 4($t0)          # p = p->next
	b    sum
sumdone:

	# --- reverse the list in place ---
	move $t0, $s1             # p
	li   $t3, 0               # prev
rev:
	beqz $t0, revdone
	lw   $t4, 4($t0)          # next
	sw   $t3, 4($t0)
	move $t3, $t0
	move $t0, $t4
	b    rev
revdone:
	move $s1, $t3             # new head

	# --- assoc: find first cell with value < key ---
` + xorshift + `
	andi $s4, $s0, 255        # key
	move $t0, $s1
find:
	beqz $t0, findone
	lw   $t5, 0($t0)
	blt  $t5, $s4, findone
	lw   $t0, 4($t0)
	b    find
findone:

	# --- mutate one random cell's value ---
` + xorshift + `
	andi $t6, $s0, 255
	sll  $t6, $t6, 3
	addu $t6, $s2, $t6
` + xorshift + `
	andi $t7, $s0, 1023
	sw   $t7, 0($t6)

	b    outer
`

func init() {
	register(&Benchmark{
		Name:        "li",
		Model:       "SPECint95 130.li",
		Description: "cons-cell list interpreter loop: pointer chasing, reversal, search",
		Source:      liSrc,
	})
}
