package progs

// gobench stands in for SPECint95 099.go (the game of Go). Its
// dominant behaviour is repeated whole-board scans with
// neighbourhood inspection: nested loops over a 19x19 byte board,
// bounds checks, colour compares and per-point influence scoring.
// That yields dense short strides (board addresses), near-constant
// compare results and data-dependent branches. The board is mutated
// a little between scans, as game positions evolve slowly.
const goSrc = `
# go: 19x19 board scanning with neighbour counting and influence.
	.data
board:	.space 368                  # 19*19 = 361 bytes, padded
infl:	.space 1448                 # 361 influence words, padded

	.text
main:
	li   $s0, 69069                 # PRNG state

	# Random initial position: 0 empty, 1 black, 2 white (skewed to empty).
	li   $t0, 0
	li   $t8, 361
bfill:
` + xorshift + `
	andi $t1, $s0, 7
	li   $t2, 0
	li   $t3, 5
	blt  $t1, $t3, bput             # 0..4 -> empty
	andi $t2, $t1, 1
	addiu $t2, $t2, 1               # 5,7 -> white(2)? 5->2? compute 1+(t1&1)
bput:
	sb   $t2, board($t0)
	addiu $t0, $t0, 1
	bne  $t0, $t8, bfill

outer:
	# --- full-board scan: per-point neighbour counting ---
	li   $s1, 0                     # y
	li   $s5, 0                     # total influence accumulator
yloop:
	li   $s2, 0                     # x
xloop:
	li   $t0, 19
	mul  $t1, $s1, $t0
	addu $t1, $t1, $s2              # idx = y*19 + x
	lbu  $t2, board($t1)            # colour at point
	li   $t3, 0                     # same-colour neighbour count
	li   $t4, 0                     # empty neighbour count (liberties)

	# north
	beqz $s1, snorth
	addiu $t5, $t1, -19
	lbu  $t6, board($t5)
	bnez $t6, nn1
	addiu $t4, $t4, 1
	b    snorth
nn1:
	bne  $t6, $t2, snorth
	addiu $t3, $t3, 1
snorth:
	# south
	li   $t7, 18
	beq  $s1, $t7, ssouth
	addiu $t5, $t1, 19
	lbu  $t6, board($t5)
	bnez $t6, ns1
	addiu $t4, $t4, 1
	b    ssouth
ns1:
	bne  $t6, $t2, ssouth
	addiu $t3, $t3, 1
ssouth:
	# west
	beqz $s2, swest
	addiu $t5, $t1, -1
	lbu  $t6, board($t5)
	bnez $t6, nw1
	addiu $t4, $t4, 1
	b    swest
nw1:
	bne  $t6, $t2, swest
	addiu $t3, $t3, 1
swest:
	# east
	li   $t7, 18
	beq  $s2, $t7, seast
	addiu $t5, $t1, 1
	lbu  $t6, board($t5)
	bnez $t6, ne1
	addiu $t4, $t4, 1
	b    seast
ne1:
	bne  $t6, $t2, seast
	addiu $t3, $t3, 1
seast:
	# influence[idx] = colour*16 + same*4 + liberties
	sll  $t6, $t2, 4
	sll  $t7, $t3, 2
	addu $t6, $t6, $t7
	addu $t6, $t6, $t4
	sll  $t5, $t1, 2
	sw   $t6, infl($t5)
	addu $s5, $s5, $t6

	addiu $s2, $s2, 1
	li   $t7, 19
	bne  $s2, $t7, xloop
	addiu $s1, $s1, 1
	li   $t7, 19
	bne  $s1, $t7, yloop

	# --- find the maximal-influence point (argmax scan) ---
	li   $t0, 0                     # index
	li   $t1, -1                    # best value
	li   $t2, 0                     # best index
	li   $t8, 361
amax:
	sll  $t3, $t0, 2
	lw   $t4, infl($t3)
	ble  $t4, $t1, anext
	move $t1, $t4
	move $t2, $t0
anext:
	addiu $t0, $t0, 1
	bne  $t0, $t8, amax

	# --- play: place alternating stone at a random empty-ish point ---
	li   $t5, 0
play:
` + xorshift + `
	srl  $t0, $s0, 7
	li   $t6, 361
	rem  $t0, $t0, $t6
	andi $t1, $s0, 1
	addiu $t1, $t1, 1
	sb   $t1, board($t0)
	addiu $t5, $t5, 1
	li   $t6, 3
	bne  $t5, $t6, play

	b    outer
`

func init() {
	register(&Benchmark{
		Name:        "go",
		Model:       "SPECint95 099.go",
		Description: "19x19 board scans: neighbour counting, influence map, argmax",
		Source:      goSrc,
	})
}
