package progs

// cc1 stands in for SPECint95 126.gcc (cc1). Its kernel is a
// lexer/evaluator: it scans a buffer of generated expression text
// byte by byte, classifying characters (digit / variable / operator /
// terminator) with compare chains, looking variables up in a symbol
// table and folding constants left to right. Character classification
// produces near-constant patterns (like the paper's slt example),
// scanning produces unit strides, and symbol-table traffic produces
// context patterns.
//
// The text is organized as 256 eight-byte expressions:
// operand op operand op operand op operand ';'.
const cc1Src = `
# cc1: expression lexer + constant folder over generated text.
	.data
text:	.space 2048                  # 256 expressions x 8 bytes
symtab:	.space 104                   # 26 variables
ops:	.ascii "+-*&"

	.text
main:
	li   $s0, 521288629              # PRNG state

	# Seed the symbol table.
	li   $t0, 0
	li   $t8, 26
sfill:
` + xorshift + `
	andi $t1, $s0, 0x3f
	sll  $t2, $t0, 2
	sw   $t1, symtab($t2)
	addiu $t0, $t0, 1
	bne  $t0, $t8, sfill

	# Generate all 256 expressions.
	li   $s1, 0                      # expression index
genall:
	jal  genexpr
	addiu $s1, $s1, 1
	li   $t8, 256
	bne  $s1, $t8, genall

	li   $s6, 0                      # running total
	li   $s7, 0                      # expression counter
outer:
	# --- evaluate the whole buffer ---
	li   $s2, 0                      # byte position
	li   $s3, 0                      # accumulator
	li   $s4, 0                      # pending operator char (0 = none)
scan:
	lbu  $t0, text($s2)
	# classify: digit?
	li   $t1, '0'
	blt  $t0, $t1, notdigit
	li   $t1, '9'
	bgt  $t0, $t1, notdigit
	addiu $t2, $t0, -48              # val = c - '0'
	b    operand
notdigit:
	# variable a-z?
	li   $t1, 'a'
	blt  $t0, $t1, notvar
	li   $t1, 'z'
	bgt  $t0, $t1, notvar
	addiu $t2, $t0, -97
	sll  $t2, $t2, 2
	lw   $t2, symtab($t2)            # val = symtab[c-'a']
	b    operand
notvar:
	li   $t1, ';'
	beq  $t0, $t1, endexpr
	move $s4, $t0                    # an operator: remember it
	b    next
operand:
	beqz $s4, firstop
	li   $t1, '+'
	bne  $s4, $t1, try_sub
	addu $s3, $s3, $t2
	b    opdone
try_sub:
	li   $t1, '-'
	bne  $s4, $t1, try_mul
	subu $s3, $s3, $t2
	b    opdone
try_mul:
	li   $t1, '*'
	bne  $s4, $t1, try_and
	mul  $s3, $s3, $t2
	b    opdone
try_and:
	and  $s3, $s3, $t2
opdone:
	li   $s4, 0
	b    next
firstop:
	move $s3, $t2
	b    next
endexpr:
	addu $s6, $s6, $s3               # total += acc
	# writeback: symtab[count % 26] = acc
	li   $t3, 26
	rem  $t4, $s7, $t3
	sll  $t4, $t4, 2
	sw   $s3, symtab($t4)
	addiu $s7, $s7, 1
	li   $s3, 0
	li   $s4, 0
next:
	addiu $s2, $s2, 1
	li   $t5, 2048
	bne  $s2, $t5, scan

	# --- regenerate 16 random expressions, repeat ---
	li   $s5, 0
regen:
` + xorshift + `
	srl  $s1, $s0, 16
	andi $s1, $s1, 255
	jal  genexpr
	addiu $s5, $s5, 1
	li   $t8, 16
	bne  $s5, $t8, regen
	b    outer

# genexpr writes expression $s1 (8 bytes at text + $s1*8).
# Clobbers $t0..$t9. PRNG in $s0.
genexpr:
	sll  $t4, $s1, 3                 # base offset
	li   $t5, 0                      # token slot 0,2,4,6
gtok:
` + xorshift + `
	andi $t0, $s0, 3
	beqz $t0, gvar                   # 25%: variable operand
	srl  $t1, $s0, 4
	li   $t6, 10
	rem  $t1, $t1, $t6
	addiu $t1, $t1, '0'
	b    gput
gvar:
	srl  $t1, $s0, 4
	li   $t6, 26
	rem  $t1, $t1, $t6
	addiu $t1, $t1, 'a'
gput:
	addu $t2, $t4, $t5
	sb   $t1, text($t2)
	li   $t6, 6
	beq  $t5, $t6, glast
	# operator in the odd slot
` + xorshift + `
	andi $t0, $s0, 3
	lbu  $t1, ops($t0)
	addu $t2, $t4, $t5
	addiu $t2, $t2, 1
	sb   $t1, text($t2)
	addiu $t5, $t5, 2
	b    gtok
glast:
	li   $t1, ';'
	addu $t2, $t4, $t5
	addiu $t2, $t2, 1
	sb   $t1, text($t2)
	jr   $ra
`

func init() {
	register(&Benchmark{
		Name:        "cc1",
		Model:       "SPECint95 126.gcc",
		Description: "expression lexing and constant folding over generated source text",
		Source:      cc1Src,
	})
}
