# Verify loop for the repo. `make verify` is the default gate for any
# change: the tier-1 build+test pass (ROADMAP.md), go vet, the race
# detector over the concurrent packages (internal/serve is the first
# concurrent code in the repo; its tests — and the cmd tests that
# drive a live server — must stay race-clean), and the project's own
# static-analysis suite (cmd/vplint, see DESIGN.md §"Statically
# enforced invariants").

GO ?= go

.PHONY: verify build test vet lint race bench serve-bench fuzz

verify: vet build test race lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific invariants: Predict purity, replay determinism,
# hot-path allocation discipline, VP1 decode bounds, error discipline,
# lock discipline around guardedby-annotated fields, goroutine
# lifecycle ties, VP1 op/status exhaustiveness, and snapshot
# append/restore symmetry. One process runs all nine rules; the
# deadline keeps that single-pass design honest as the tree grows.
# Non-zero exit on any finding; suppress only with
# //lint:ignore <rule> <reason>.
lint:
	$(GO) run ./cmd/vplint -deadline 60s ./...

race:
	$(GO) test -race ./internal/serve/... ./internal/cluster/... ./internal/autotune/... ./internal/core/... ./internal/engine/... ./cmd/vpserve/... ./cmd/vprouter/... ./cmd/vploadgen/... ./cmd/dfcmsim/...

# Short fuzz smoke over the attacker-facing decoders and the history
# hashes. CI-friendly: a few seconds per target; crank -fuzztime for
# a real campaign.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeFrame$$' -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeMessage$$' -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeFrameReaderErrors$$' -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -run='^$$' -fuzz='^FuzzDecodeSnapshot$$' -fuzztime=$(FUZZTIME) ./internal/snapshot
	$(GO) test -run='^$$' -fuzz='^FuzzHash$$' -fuzztime=$(FUZZTIME) ./internal/hash
	$(GO) test -run='^$$' -fuzz='^FuzzReadAuto$$' -fuzztime=$(FUZZTIME) ./internal/trace

# Experiment-suite benchmarks, snapshotted to BENCH_engine.json
# (name → ns/op, allocs/op) with speedups over stated baselines
# recorded alongside. The full suite runs one iteration per figure;
# the per-event predictor microbenchmarks, batch loops, engine replay
# and serve dispatch paths re-run at steady state ($(BENCH_COUNT)
# counts; benchjson keeps the minimum ns/op and maximum allocs/op
# across repeats) since their 1x numbers are pure noise.
#
# Baselines: BENCH_FIG9_BASELINE_NS is the pre-engine sequential
# replay path (full-suite -benchtime=1x); the BENCH_*_BASELINE_NS
# per-predictor numbers and the engine replay baseline are the
# pre-SoA/pre-batch hot path as last recorded in BENCH_engine.json
# before the flat-layout rework, so the `speedup` section tracks the
# rework's per-predictor win.
#
# The -zero gates are the CI alloc-regression tripwire: the build
# fails if the steady-state engine replay, either serve dispatch
# benchmark, or the autotune mirror-tap path reports any allocs/op.
BENCH_FIG9_BASELINE_NS ?= 18681932
BENCH_REPLAY_BASELINE_NS ?= 2049359
BENCH_DFCM_BASELINE_NS ?= 10.74
BENCH_FCM_BASELINE_NS ?= 8.794
BENCH_STRIDE_BASELINE_NS ?= 6.16
BENCH_TWODELTA_BASELINE_NS ?= 5.778
BENCH_LVP_BASELINE_NS ?= 4.836
BENCH_DELAYED_BASELINE_NS ?= 16.21
BENCH_PERFECT_BASELINE_NS ?= 17.69
BENCH_COUNT ?= 3
bench:
	{ $(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem . ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkPredict' -benchmem -count=$(BENCH_COUNT) . ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkRunBatch' -benchmem -count=$(BENCH_COUNT) . ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkSnapshot' -benchmem -count=$(BENCH_COUNT) . ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkEngineReplay$$' -benchmem ./internal/engine/ ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkServe' -benchmem -count=$(BENCH_COUNT) ./internal/serve/ ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkServe' -benchmem -count=$(BENCH_COUNT) ./internal/autotune/ ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkClusterBackends' -benchmem -count=$(BENCH_COUNT) ./internal/cluster/ ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_engine.json \
	    -cmd "make bench (go test -bench . -benchtime 1x -benchmem; Predict*/RunBatch*/Snapshot*/EngineReplay/Serve*/ClusterBackends* at steady state)" \
	    -speedup BenchmarkFig9=$(BENCH_FIG9_BASELINE_NS) \
	    -speedup BenchmarkEngineReplay=$(BENCH_REPLAY_BASELINE_NS) \
	    -speedup BenchmarkPredictDFCM=$(BENCH_DFCM_BASELINE_NS) \
	    -speedup BenchmarkPredictFCM=$(BENCH_FCM_BASELINE_NS) \
	    -speedup BenchmarkPredictStride=$(BENCH_STRIDE_BASELINE_NS) \
	    -speedup BenchmarkPredictTwoDelta=$(BENCH_TWODELTA_BASELINE_NS) \
	    -speedup BenchmarkPredictLastValue=$(BENCH_LVP_BASELINE_NS) \
	    -speedup BenchmarkPredictDFCMDelayed=$(BENCH_DELAYED_BASELINE_NS) \
	    -speedup BenchmarkPredictPerfectHybrid=$(BENCH_PERFECT_BASELINE_NS) \
	    -zero BenchmarkEngineReplay \
	    -zero BenchmarkRunBatchTAGE \
	    -zero BenchmarkServeDispatchRunBatch \
	    -zero BenchmarkServeDispatchPredictBatch \
	    -zero BenchmarkServeMirrorTap
	@cat BENCH_engine.json

# Per-op predictor baselines for the serving hot path.
serve-bench:
	$(GO) test -bench=PredictUpdate -benchmem ./internal/core/
