# Verify loop for the repo. `make verify` is the default gate for any
# change: the tier-1 build+test pass (ROADMAP.md), go vet, and the
# race detector over the concurrent packages (internal/serve is the
# first concurrent code in the repo; its tests — and the cmd tests
# that drive a live server — must stay race-clean).

GO ?= go

.PHONY: verify build test vet race bench serve-bench

verify: vet build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/serve/... ./internal/core/... ./cmd/vpserve/... ./cmd/vploadgen/...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Per-op predictor baselines for the serving hot path.
serve-bench:
	$(GO) test -bench=PredictUpdate -benchmem ./internal/core/
