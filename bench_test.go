package repro

// One testing.B benchmark per paper table/figure: each bench runs the
// corresponding experiment end to end (trace generation is cached
// after the first iteration, so steady-state iterations measure the
// predictor sweeps). benchBudget keeps -bench=. runs tractable; the
// CLI (cmd/dfcmsim) runs the same experiments at full budgets.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/progs"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/workload"
)

const benchBudget = 120_000

var benchCfg = experiments.Config{Budget: benchBudget}

// smallCfg restricts the costliest sweeps to a benchmark subset.
var smallCfg = experiments.Config{
	Budget:     benchBudget,
	Benchmarks: []string{"li", "ijpeg", "m88ksim", "go"},
}

func runExperiment(b *testing.B, id string, cfg experiments.Config) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkTable1(b *testing.B)         { runExperiment(b, "table1", benchCfg) }
func BenchmarkFig3(b *testing.B)           { runExperiment(b, "fig3", smallCfg) }
func BenchmarkFig4(b *testing.B)           { runExperiment(b, "fig4", benchCfg) }
func BenchmarkFig6(b *testing.B)           { runExperiment(b, "fig6", benchCfg) }
func BenchmarkFig8(b *testing.B)           { runExperiment(b, "fig8", benchCfg) }
func BenchmarkFig9(b *testing.B)           { runExperiment(b, "fig9", benchCfg) }
func BenchmarkFig10a(b *testing.B)         { runExperiment(b, "fig10a", benchCfg) }
func BenchmarkFig10b(b *testing.B)         { runExperiment(b, "fig10b", benchCfg) }
func BenchmarkFig11a(b *testing.B)         { runExperiment(b, "fig11a", smallCfg) }
func BenchmarkFig11b(b *testing.B)         { runExperiment(b, "fig11b", smallCfg) }
func BenchmarkFig12(b *testing.B)          { runExperiment(b, "fig12", smallCfg) }
func BenchmarkFig13(b *testing.B)          { runExperiment(b, "fig13", smallCfg) }
func BenchmarkFig14(b *testing.B)          { runExperiment(b, "fig14", smallCfg) }
func BenchmarkFig16(b *testing.B)          { runExperiment(b, "fig16", smallCfg) }
func BenchmarkFig17(b *testing.B)          { runExperiment(b, "fig17", smallCfg) }
func BenchmarkSec44(b *testing.B)          { runExperiment(b, "sec44", smallCfg) }
func BenchmarkExtConfidence(b *testing.B)  { runExperiment(b, "ext-confidence", smallCfg) }
func BenchmarkExtRelatedWork(b *testing.B) { runExperiment(b, "ext-relatedwork", smallCfg) }
func BenchmarkExtPredictability(b *testing.B) {
	runExperiment(b, "ext-predictability", smallCfg)
}
func BenchmarkExtILP(b *testing.B)        { runExperiment(b, "ext-ilp", smallCfg) }
func BenchmarkAblationHash(b *testing.B)  { runExperiment(b, "ablation-hash", smallCfg) }
func BenchmarkAblationOrder(b *testing.B) { runExperiment(b, "ablation-order", smallCfg) }
func BenchmarkAblationMeta(b *testing.B)  { runExperiment(b, "ablation-meta", smallCfg) }
func BenchmarkAblationIndex(b *testing.B) { runExperiment(b, "ablation-index", smallCfg) }

// --- microbenchmarks: predictor update throughput ---
//
// These drive predictors through the experiment-shaped loop
// (trace-replay with the workload package). The per-operation
// baselines for the serving hot path — one Predict+Update round trip
// in isolation — live next to the predictors as
// internal/core.Benchmark*_PredictUpdate; compare against those when
// chasing internal/serve throughput regressions.

// benchSink keeps the Predict result observable so the compiler
// cannot treat the call as dead code and elide it.
var benchSink uint64

func benchPredictor(b *testing.B, p core.Predictor) {
	b.Helper()
	body := workload.LoopBody(0x1000, 2, 6, 4, 2)
	events := trace.Collect(workload.Interleave(body, 4096), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := events[i%len(events)]
		if p.Predict(e.PC) == e.Value {
			benchSink++
		}
		p.Update(e.PC, e.Value)
	}
}

func BenchmarkPredictLastValue(b *testing.B) { benchPredictor(b, core.NewLastValue(14)) }
func BenchmarkPredictStride(b *testing.B)    { benchPredictor(b, core.NewStride(14)) }
func BenchmarkPredictTwoDelta(b *testing.B)  { benchPredictor(b, core.NewTwoDelta(14)) }
func BenchmarkPredictFCM(b *testing.B)       { benchPredictor(b, core.NewFCM(14, 12)) }
func BenchmarkPredictDFCM(b *testing.B)      { benchPredictor(b, core.NewDFCM(14, 12)) }
func BenchmarkPredictTAGE(b *testing.B) {
	benchPredictor(b, core.NewTAGE(14, 12, 32, 4, 8, 4, 64))
}
func BenchmarkPredictDFCMDelayed(b *testing.B) {
	benchPredictor(b, core.NewDelayed(core.NewDFCM(14, 12), 64))
}
func BenchmarkPredictPerfectHybrid(b *testing.B) {
	p := core.NewPerfectHybrid(core.NewStride(14), core.NewFCM(14, 12))
	body := workload.LoopBody(0x1000, 2, 6, 4, 2)
	events := trace.Collect(workload.Interleave(body, 4096), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := events[i%len(events)]
		p.Score(e.PC, e.Value)
	}
}

// benchRunBatch measures the chunked hot path the engine and the
// serving tier actually run: one core.RunBatch call per chunk,
// dispatched once to the predictor's concrete-type loop. ns/op is per
// event, directly comparable to the BenchmarkPredict* per-event
// numbers above; the gap between the two is the per-event interface
// dispatch the batch path eliminates.
func benchRunBatch(b *testing.B, p core.Predictor) {
	b.Helper()
	body := workload.LoopBody(0x1000, 2, 6, 4, 2)
	events := trace.Collect(workload.Interleave(body, 4096), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(events) {
		n := len(events)
		if rem := b.N - i; rem < n {
			n = rem
		}
		res := core.RunBatch(p, events[:n])
		benchSink += res.Correct
	}
}

func BenchmarkRunBatchDFCM(b *testing.B)   { benchRunBatch(b, core.NewDFCM(14, 12)) }
func BenchmarkRunBatchFCM(b *testing.B)    { benchRunBatch(b, core.NewFCM(14, 12)) }
func BenchmarkRunBatchStride(b *testing.B) { benchRunBatch(b, core.NewStride(14)) }
func BenchmarkRunBatchTAGE(b *testing.B) {
	benchRunBatch(b, core.NewTAGE(14, 12, 32, 4, 8, 4, 64))
}

// --- microbenchmarks: snapshot encode/decode ---
//
// The checkpoint cost model for internal/serve: Encode is what a
// shard pays per session per checkpoint sweep (capture + container
// encoding into a reused buffer), Decode is the warm-start cost per
// session file. Both run against a warmed serving-sized DFCM so the
// numbers reflect real table occupancy, and report allocs/op — the
// encode path should stay at a handful of allocations regardless of
// table size.

// warmedDFCMSnapshot trains a serving-sized DFCM and returns its spec,
// the predictor, and its encoded snapshot bytes.
func warmedDFCMSnapshot(b *testing.B) (core.Spec, core.Predictor, []byte) {
	b.Helper()
	spec := core.Spec{Kind: "dfcm", L1: 14, L2: 12}
	p, err := spec.New()
	if err != nil {
		b.Fatal(err)
	}
	body := workload.LoopBody(0x1000, 2, 6, 4, 2)
	core.Run(p, trace.NewReader(trace.Collect(workload.Interleave(body, 4096), 0)))
	snap, err := snapshot.Capture(spec, p, snapshot.Meta{Session: 1})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	return spec, p, buf.Bytes()
}

func BenchmarkSnapshotEncodeDFCM(b *testing.B) {
	spec, p, encoded := warmedDFCMSnapshot(b)
	var buf bytes.Buffer
	buf.Grow(len(encoded))
	b.SetBytes(int64(len(encoded)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		snap, err := snapshot.Capture(spec, p, snapshot.Meta{Session: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := snap.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		benchSink += uint64(buf.Len())
	}
}

func BenchmarkSnapshotDecodeDFCM(b *testing.B) {
	_, _, encoded := warmedDFCMSnapshot(b)
	b.SetBytes(int64(len(encoded)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := snapshot.Decode(bytes.NewReader(encoded))
		if err != nil {
			b.Fatal(err)
		}
		p, err := snap.Restore()
		if err != nil {
			b.Fatal(err)
		}
		benchSink += uint64(p.SizeBits())
	}
}

// --- microbenchmark: simulator throughput ---

func BenchmarkSimulator(b *testing.B) {
	p, err := progs.Program("li")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var executed uint64
	for i := 0; i < b.N; i++ {
		tr, err := progs.TraceFor("li", 100_000)
		if err != nil {
			b.Fatal(err)
		}
		executed += uint64(len(tr))
	}
	_ = p
	b.ReportMetric(float64(executed)/float64(b.N), "events/run")
}

func BenchmarkExtLoads(b *testing.B) { runExperiment(b, "ext-loads", smallCfg) }
