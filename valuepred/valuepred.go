// Package valuepred is the public API of the DFCM reproduction: value
// predictors (last-value, stride, two-delta, last-n, FCM, DFCM,
// hybrids), trace types, confidence estimation and measurement
// helpers, re-exported from the internal implementation packages so
// downstream code can import them.
//
// The one-minute tour:
//
//	p := valuepred.NewDFCM(16, 12)
//	for _, e := range events {           // your (pc, value) stream
//	    predicted := p.Predict(e.PC)
//	    // ... speculate with predicted ...
//	    p.Update(e.PC, e.Value)
//	}
//
// or, measuring accuracy over a trace:
//
//	res := valuepred.Run(valuepred.NewDFCM(16, 12), valuepred.NewReader(tr))
//	fmt.Println(res.Accuracy())
//
// See the repository README for the experiment harness that
// regenerates the paper's tables and figures.
package valuepred

import (
	"io"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/trace"
)

// Core types, aliased so values flow freely between this package and
// the internal implementation.
type (
	// Predictor is a value predictor: Predict then Update per event.
	Predictor = core.Predictor
	// ConfidentPredictor also exposes a confidence signal.
	ConfidentPredictor = core.ConfidentPredictor
	// Result accumulates prediction outcomes.
	Result = core.Result
	// ConfidenceResult splits outcomes by the confidence signal.
	ConfidenceResult = core.ConfidenceResult
	// Event is one trace record: the PC of a static instruction and
	// the 32-bit integer value it produced.
	Event = trace.Event
	// Trace is an in-memory sequence of events.
	Trace = trace.Trace
	// Source yields trace events one at a time.
	Source = trace.Source
	// HashFunc is an incrementally updatable history hash for
	// two-level predictors.
	HashFunc = hash.Func
)

// Predictor constructors. Table sizes are given as log2 of the entry
// count; see each internal constructor for the exact size accounting.
var (
	// NewLastValue returns a last-value predictor with 2^bits entries.
	NewLastValue = core.NewLastValue
	// NewStride returns the paper's confidence-gated stride predictor.
	NewStride = core.NewStride
	// NewTwoDelta returns the two-delta stride predictor.
	NewTwoDelta = core.NewTwoDelta
	// NewLastN returns the last-n value predictor of Burtscher & Zorn.
	NewLastN = core.NewLastN
	// NewFCM returns a finite context method predictor (FS R-5 hash).
	NewFCM = core.NewFCM
	// NewDFCM returns the paper's differential FCM predictor.
	NewDFCM = core.NewDFCM
	// NewDFCMWidth is NewDFCM with truncated stored strides (§4.4).
	NewDFCMWidth = core.NewDFCMWidth
	// NewTAGE returns the VTAGE tagged geometric-history predictor:
	// a DFCM-style base plus tagged tables at geometrically
	// increasing stride-history lengths.
	NewTAGE = core.NewTAGE
	// NewPerfectHybrid combines components under an oracle selector.
	NewPerfectHybrid = core.NewPerfectHybrid
	// NewMetaHybrid combines two components under counter selection.
	NewMetaHybrid = core.NewMetaHybrid
	// NewClassified assigns each instruction to one component
	// (dynamic classification à la Rychlik).
	NewClassified = core.NewClassified
	// NewDelayed defers table updates by a pipeline-like delay (§4.5).
	NewDelayed = core.NewDelayed
	// NewCounterConfidence gates any predictor with saturating
	// counters.
	NewCounterConfidence = core.NewCounterConfidence
	// NewHashTag implements the paper's §4.2 confidence proposal.
	NewHashTag = core.NewHashTag
	// NewCombined ANDs a hash-tag and a counter estimator.
	NewCombined = core.NewCombined
	// NewFSR builds an FS R-k history hash; NewFSR5 the paper's R-5.
	NewFSR  = hash.NewFSR
	NewFSR5 = hash.NewFSR5
)

// Measurement helpers.
var (
	// Run drives a predictor over a source and returns the outcome.
	Run = core.Run
	// RunConfident additionally scores the confidence signal.
	RunConfident = core.RunConfident
	// NewReader replays an in-memory trace.
	NewReader = trace.NewReader
)

// ReadTrace reads a VTR1 or VTRZ trace stream.
func ReadTrace(r io.Reader) (Trace, error) { return trace.ReadAuto(r) }

// WriteTrace writes a trace in the plain VTR1 format.
func WriteTrace(w io.Writer, t Trace) error { return trace.Write(w, t) }

// WriteTraceCompressed writes a trace in the flate-compressed VTRZ
// container.
func WriteTraceCompressed(w io.Writer, t Trace) error { return trace.WriteCompressed(w, t) }
