package valuepred_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/valuepred"
)

func TestPublicAPISurface(t *testing.T) {
	// Every constructor must be reachable and produce a working
	// predictor through the facade alone.
	preds := []valuepred.Predictor{
		valuepred.NewLastValue(8),
		valuepred.NewStride(8),
		valuepred.NewTwoDelta(8),
		valuepred.NewLastN(8, 4),
		valuepred.NewFCM(8, 10),
		valuepred.NewDFCM(8, 10),
		valuepred.NewDFCMWidth(8, 10, 16),
		valuepred.NewPerfectHybrid(valuepred.NewStride(8), valuepred.NewFCM(8, 10)),
		valuepred.NewMetaHybrid(valuepred.NewStride(8), valuepred.NewFCM(8, 10), 8),
		valuepred.NewClassified(8, 16, 8, valuepred.NewLastValue(8), valuepred.NewStride(8)),
		valuepred.NewDelayed(valuepred.NewDFCM(8, 10), 16),
		valuepred.NewTAGE(8, 6, 32, 4, 8, 4, 64),
	}
	var tr valuepred.Trace
	for i := 0; i < 500; i++ {
		tr = append(tr, valuepred.Event{PC: 0x40, Value: uint32(i * 3)})
	}
	for _, p := range preds {
		res := valuepred.Run(p, valuepred.NewReader(tr))
		if res.Predictions != uint64(len(tr)) {
			t.Errorf("%s: %d predictions", p.Name(), res.Predictions)
		}
	}
}

func TestPublicConfidenceAPI(t *testing.T) {
	p := valuepred.NewDFCM(8, 10)
	var estimators []valuepred.ConfidentPredictor
	estimators = append(estimators,
		valuepred.NewCounterConfidence(valuepred.NewDFCM(8, 10), 8, 15, 8),
		valuepred.NewHashTag(valuepred.NewDFCM(8, 10), 8, 3),
		valuepred.NewCombined(p, valuepred.NewHashTag(p, 8, 3),
			valuepred.NewCounterConfidence(p, 8, 15, 8)),
	)
	var tr valuepred.Trace
	for i := 0; i < 300; i++ {
		tr = append(tr, valuepred.Event{PC: 0x40, Value: uint32(i)})
	}
	for _, e := range estimators {
		res := valuepred.RunConfident(e, valuepred.NewReader(tr))
		if res.All.Predictions != uint64(len(tr)) {
			t.Errorf("%s: missing predictions", e.Name())
		}
	}
}

func TestPublicTraceIO(t *testing.T) {
	tr := valuepred.Trace{{PC: 0x40, Value: 7}, {PC: 0x44, Value: 9}}
	for _, write := range []func(*bytes.Buffer, valuepred.Trace) error{
		func(b *bytes.Buffer, t valuepred.Trace) error { return valuepred.WriteTrace(b, t) },
		func(b *bytes.Buffer, t valuepred.Trace) error { return valuepred.WriteTraceCompressed(b, t) },
	} {
		var buf bytes.Buffer
		if err := write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := valuepred.ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0] != tr[0] {
			t.Errorf("round trip: %v", got)
		}
	}
}

func TestPublicHashAPI(t *testing.T) {
	var h valuepred.HashFunc = valuepred.NewFSR5(12)
	if h.Order() != 3 {
		t.Errorf("FS R-5 order at n=12 = %d", h.Order())
	}
	if valuepred.NewFSR(12, 3).Order() != 4 {
		t.Error("FS R-3 order wrong")
	}
}

// The facade in action, as a user would write it.
func ExampleNewDFCM() {
	p := valuepred.NewDFCM(10, 12)
	correct := 0
	for i := 0; i < 50; i++ {
		v := uint32(100 + 9*i)
		if p.Predict(0x40) == v {
			correct++
		}
		p.Update(0x40, v)
	}
	fmt.Printf("%d/50 after warmup\n", correct)
	// Output:
	// 45/50 after warmup
}
