package repro

// End-to-end integration tests spanning every subsystem: benchmark
// assembly → simulation → trace serialization → prediction →
// measurement. These are the "does the whole machine reproduce the
// paper" checks; per-package tests cover the parts.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/progs"
	"repro/internal/trace"
)

// TestEndToEndPipeline pushes one benchmark through the entire stack.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Assemble + simulate.
	tr, err := progs.TraceFor("li", 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) < 50_000 {
		t.Fatalf("trace too short: %d", len(tr))
	}
	// 2. Serialize (compressed) and reload.
	var buf bytes.Buffer
	if err := trace.WriteCompressed(&buf, tr); err != nil {
		t.Fatal(err)
	}
	reloaded, err := trace.ReadAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != len(tr) {
		t.Fatal("serialization lost events")
	}
	// 3. Predict with the full ladder; the paper's ordering must hold
	// on this context-heavy benchmark.
	acc := func(p core.Predictor) float64 {
		return core.Run(p, trace.NewReader(reloaded)).Accuracy()
	}
	lvp := acc(core.NewLastValue(12))
	stride := acc(core.NewStride(12))
	fcm := acc(core.NewFCM(14, 14))
	dfcm := acc(core.NewDFCM(14, 14))
	if !(lvp < stride && stride < fcm && fcm < dfcm) {
		t.Errorf("predictor ladder violated on li: lvp %.3f, stride %.3f, fcm %.3f, dfcm %.3f",
			lvp, stride, fcm, dfcm)
	}
	// 4. Measure trace statistics for consistency with the ladder.
	st := trace.Summarize(reloaded, 0)
	if st.ConstantFrac > st.StrideFrac {
		t.Errorf("li should be stride-richer than constant-rich (%.3f vs %.3f)",
			st.ConstantFrac, st.StrideFrac)
	}
}

// TestCentralClaimAcrossSuite is the repository's headline assertion:
// on every benchmark, at the paper's working point, the DFCM beats
// the FCM.
func TestCentralClaimAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	for _, bench := range progs.SPECNames() {
		tr, err := progs.TraceFor(bench, 250_000)
		if err != nil {
			t.Fatal(err)
		}
		fcm := core.Run(core.NewFCM(16, 12), trace.NewReader(tr)).Accuracy()
		dfcm := core.Run(core.NewDFCM(16, 12), trace.NewReader(tr)).Accuracy()
		if dfcm < fcm {
			t.Errorf("%s: DFCM %.3f below FCM %.3f", bench, dfcm, fcm)
		}
	}
}

// TestExperimentDeterminism locks the full pipeline bit-for-bit: the
// same configuration must produce the identical rendered table on
// every run (the simulator, benchmarks and predictors use no
// wall-clock or OS randomness).
func TestExperimentDeterminism(t *testing.T) {
	cfg := experiments.Config{Budget: 80_000, Benchmarks: []string{"li", "go"}}
	e, err := experiments.Get("fig10a")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		experiments.ResetCache()
		res, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	first := render()
	for i := 0; i < 2; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i+2, got, first)
		}
	}
}

// TestWeightedMeanMatchesManualAggregation cross-checks the harness's
// summary statistic against a by-hand computation.
func TestWeightedMeanMatchesManualAggregation(t *testing.T) {
	benches := []string{"li", "m88ksim"}
	var manual core.Result
	var per []metrics.BenchResult
	for _, b := range benches {
		tr, err := progs.TraceFor(b, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		r := core.Run(core.NewDFCM(12, 10), trace.NewReader(tr))
		manual.Add(r)
		per = append(per, metrics.BenchResult{Benchmark: b, Result: r})
	}
	if got, want := metrics.WeightedMean(per), manual.Accuracy(); got != want {
		t.Errorf("WeightedMean %.6f != pooled accuracy %.6f", got, want)
	}
}
