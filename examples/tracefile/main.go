// Trace pipeline: write your own MR32 assembly program, run it on the
// functional simulator, serialize the value trace to a file, read it
// back and evaluate predictors on it — the full substrate end to end.
//
//	go run ./examples/tracefile
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/vm"
)

// A custom micro-benchmark: a triangular-number loop (pure strides)
// feeding a small modular hash (context patterns).
const program = `
	.data
table:	.space 64
	.text
main:
	li   $s1, 0              # i
	li   $s2, 0              # triangular sum
loop:
	addiu $s1, $s1, 1
	addu  $s2, $s2, $s1      # sum += i
	# hash the sum into a 16-entry table and read it back
	andi  $t0, $s2, 15
	sll   $t0, $t0, 2
	lw    $t1, table($t0)
	addu  $t1, $t1, $s2
	sw    $t1, table($t0)
	li    $t2, 50000
	bne   $s1, $t2, loop
	li    $v0, 10
	syscall
`

func main() {
	prog, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	// Run to completion, collecting the value trace.
	tr, err := vm.Trace(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated program produced %d trace events\n", len(tr))

	// Serialize and reload (normally via a file; a buffer here).
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VTR1 encoding: %.2f bytes/event\n", float64(buf.Len())/float64(len(tr)))
	reloaded, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate predictors on the reloaded trace.
	for _, p := range []core.Predictor{
		core.NewLastValue(8),
		core.NewStride(8),
		core.NewFCM(8, 12),
		core.NewDFCM(8, 12),
	} {
		res := core.Run(p, trace.NewReader(reloaded))
		fmt.Printf("%-14s accuracy %.4f (%d/%d)\n",
			p.Name(), res.Accuracy(), res.Correct, res.Predictions)
	}
}
