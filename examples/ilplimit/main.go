// ILP limit study: the paper's opening argument — "the upper bound on
// achievable IPC is generally imposed by true register dependencies;
// value prediction is a technique capable of pushing this upper
// bound" — measured on the benchmark suite with a Lipasti-style
// idealized machine.
//
//	go run ./examples/ilplimit
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/progs"
)

func main() {
	const (
		budget = 500_000
		width  = 64 // fetch bandwidth, the model's only resource limit
	)
	fmt.Printf("dataflow-limit ILP, %d-wide fetch, %d instructions per benchmark\n\n", width, budget)
	fmt.Printf("%-10s %12s %12s %12s\n", "benchmark", "no pred.", "DFCM", "oracle")
	for _, name := range progs.SPECNames() {
		p, err := progs.Program(name)
		if err != nil {
			log.Fatal(err)
		}
		base, err := ilp.MeasureWidth(p, budget, nil, width)
		if err != nil {
			log.Fatal(err)
		}
		dfcm, err := ilp.MeasureWidth(p, budget, core.NewDFCM(16, 12), width)
		if err != nil {
			log.Fatal(err)
		}
		orc, err := ilp.MeasureWidth(p, budget, ilp.Oracle, width)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.2f %12.2f %12.2f\n", name, base.ILP(), dfcm.ILP(), orc.ILP())
	}
	fmt.Println("\nBenchmarks whose critical chain is predictable (loop counters,")
	fmt.Println("interpreter state) leap toward the fetch limit under the DFCM;")
	fmt.Println("chains of inherently unpredictable values stay dependence-bound.")
}
