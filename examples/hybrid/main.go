// Hybrid comparison: reproduce the paper's section 4.3 argument on a
// real benchmark trace — a single DFCM is competitive with (and
// usually beats) a STRIDE+FCM hybrid even when that hybrid's
// meta-predictor is a perfect oracle.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/progs"
	"repro/internal/trace"
)

func main() {
	const budget = 2_000_000
	fmt.Printf("benchmark traces: %d instructions each\n\n", budget)
	fmt.Printf("%-10s %8s %8s %12s %13s\n",
		"benchmark", "FCM", "DFCM", "STRIDE+FCM", "STRIDE+DFCM")

	for _, name := range progs.SPECNames() {
		tr, err := progs.TraceFor(name, budget)
		if err != nil {
			log.Fatal(err)
		}
		run := func(p core.Predictor) float64 {
			return core.Run(p, trace.NewReader(tr)).Accuracy()
		}
		fcm := run(core.NewFCM(16, 12))
		dfcm := run(core.NewDFCM(16, 12))
		// Perfect hybrids: correct when either component is correct.
		sf := run(core.NewPerfectHybrid(core.NewStride(16), core.NewFCM(16, 12)))
		sd := run(core.NewPerfectHybrid(core.NewStride(16), core.NewDFCM(16, 12)))
		fmt.Printf("%-10s %8.4f %8.4f %12.4f %13.4f\n", name, fcm, dfcm, sf, sd)
	}

	fmt.Println("\nSTRIDE+DFCM barely improves on DFCM alone: the DFCM already")
	fmt.Println("captures nearly all stride patterns, so no meta-predictor is needed.")
}
