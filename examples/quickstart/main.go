// Quickstart: build a DFCM value predictor through the public
// valuepred API, feed it a mixed value trace, and compare it against
// the classic baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/valuepred"
)

// loopTrace synthesizes an inner loop's value stream: constants
// (compare results, reloaded globals), strides (induction variables,
// addresses), a repeating context pattern (pointer chasing) and
// noise, one static instruction each.
func loopTrace(rounds int) valuepred.Trace {
	pattern := []uint32{9, 2, 25, 7, 1, 130, 4, 66}
	rng := uint32(88172645)
	var tr valuepred.Trace
	for i := 0; i < rounds; i++ {
		tr = append(tr,
			valuepred.Event{PC: 0x1000, Value: 7},                                    // constant
			valuepred.Event{PC: 0x1004, Value: uint32(i) * 4},                        // stride +4
			valuepred.Event{PC: 0x1008, Value: 0x100000 + uint32(i)*12},              // stride +12
			valuepred.Event{PC: 0x100c, Value: pattern[i%len(pattern)]},              // context
			valuepred.Event{PC: 0x1010, Value: pattern[(i*3+1)%len(pattern)] ^ 0x40}, // context
		)
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		tr = append(tr, valuepred.Event{PC: 0x1014, Value: rng & 0xffff}) // noise
	}
	return tr
}

func main() {
	tr := loopTrace(20_000)

	predictors := []valuepred.Predictor{
		valuepred.NewLastValue(10),
		valuepred.NewStride(10),
		valuepred.NewTwoDelta(10),
		valuepred.NewFCM(10, 12),
		valuepred.NewDFCM(10, 12),                  // the paper's contribution
		valuepred.NewTAGE(10, 10, 32, 4, 8, 4, 64), // tagged geometric history
	}

	fmt.Printf("%-26s %12s %10s\n", "predictor", "size(Kbit)", "accuracy")
	for _, p := range predictors {
		res := valuepred.Run(p, valuepred.NewReader(tr))
		fmt.Printf("%-26s %12.1f %10.4f\n",
			p.Name(), float64(p.SizeBits())/1024, res.Accuracy())
	}

	fmt.Println("\nThe DFCM matches the stride predictor on strides AND the")
	fmt.Println("FCM on repeating patterns — with one table serving both.")
}
