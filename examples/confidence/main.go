// Confidence estimation: a predictor is only as useful as the
// mechanism deciding when to trust it. This example contrasts the two
// estimators the repository implements for the DFCM — classical
// saturating counters and the paper's proposed level-2 hash tags
// (section 4.2) — on a real benchmark trace.
//
//	go run ./examples/confidence
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/progs"
	"repro/internal/trace"
)

func main() {
	tr, err := progs.TraceFor("li", 2_000_000)
	if err != nil {
		log.Fatal(err)
	}

	schemes := []struct {
		name string
		mk   func() core.ConfidentPredictor
	}{
		{"counter t=4", func() core.ConfidentPredictor {
			return core.NewCounterConfidence(core.NewDFCM(16, 12), 16, 15, 4)
		}},
		{"counter t=15", func() core.ConfidentPredictor {
			return core.NewCounterConfidence(core.NewDFCM(16, 12), 16, 15, 15)
		}},
		{"hash tag 8b", func() core.ConfidentPredictor {
			return core.NewHashTag(core.NewDFCM(16, 12), 8, 3)
		}},
	}

	fmt.Println("DFCM 2^16/2^12 on benchmark li:")
	fmt.Printf("%-14s %10s %16s %10s\n", "estimator", "coverage", "confident acc", "raw acc")
	for _, s := range schemes {
		r := core.RunConfident(s.mk(), trace.NewReader(tr))
		fmt.Printf("%-14s %10.4f %16.4f %10.4f\n",
			s.name, r.Coverage(), r.Confident.Accuracy(), r.All.Accuracy())
	}

	fmt.Println("\nCounters buy precision by sacrificing coverage; the hash tag")
	fmt.Println("keeps coverage high by detecting exactly the hash-aliasing misses")
	fmt.Println("that dominate DFCM mispredictions (paper, Figure 14).")
}
