# hanoi.s — towers of Hanoi move counter on the MR32 simulator.
#
#   go run ./cmd/mr32run -stats examples/mr32/hanoi.s
#
# Solves 16 disks recursively, counting moves in a global, and prints
# the count (2^16 - 1 = 65535).
	.data
moves:	.word 0
msg:	.asciiz "moves: "
nl:	.asciiz "\n"

	.text
main:
	li   $a0, 16              # disks
	jal  hanoi
	lw   $a0, moves
	la   $t0, msg
	move $t1, $a0
	move $a0, $t0
	li   $v0, 4
	syscall
	move $a0, $t1
	li   $v0, 1
	syscall
	la   $a0, nl
	li   $v0, 4
	syscall
	li   $v0, 10
	syscall

# hanoi(n): moves++ per disk move; recursion only.
hanoi:
	blez $a0, hdone
	addiu $sp, $sp, -8
	sw   $ra, 0($sp)
	sw   $a0, 4($sp)
	addiu $a0, $a0, -1
	jal  hanoi                # move n-1 to spare
	lw   $t0, moves           # move disk n
	addiu $t0, $t0, 1
	sw   $t0, moves
	lw   $a0, 4($sp)
	addiu $a0, $a0, -1
	jal  hanoi                # move n-1 onto it
	lw   $ra, 0($sp)
	addiu $sp, $sp, 8
	jr   $ra
hdone:
	jr   $ra
