# fib.s — recursive Fibonacci on the MR32 simulator.
#
#   go run ./cmd/mr32run -stats examples/mr32/fib.s
#
# Prints fib(20) and exits. Exercises the calling convention, the
# stack, and recursion; its value trace is a nice mix of stack-address
# strides and context patterns.
	.data
msg:	.asciiz "fib(20) = "
nl:	.asciiz "\n"

	.text
main:
	la   $a0, msg
	li   $v0, 4
	syscall
	li   $a0, 20
	jal  fib
	move $a0, $v0
	li   $v0, 1
	syscall
	la   $a0, nl
	li   $v0, 4
	syscall
	li   $v0, 10
	syscall

# fib(n): returns fib(n) in $v0; clobbers $t0, $t1.
fib:
	li   $t0, 2
	slt  $t0, $a0, $t0        # n < 2 ?
	beqz $t0, fib_rec
	move $v0, $a0
	jr   $ra
fib_rec:
	addiu $sp, $sp, -12
	sw   $ra, 0($sp)
	sw   $a0, 4($sp)
	addiu $a0, $a0, -1
	jal  fib
	sw   $v0, 8($sp)
	lw   $a0, 4($sp)
	addiu $a0, $a0, -2
	jal  fib
	lw   $t1, 8($sp)
	addu $v0, $v0, $t1
	lw   $ra, 0($sp)
	addiu $sp, $sp, 12
	jr   $ra
