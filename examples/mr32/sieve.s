# sieve.s — sieve of Eratosthenes up to 10000 on the MR32 simulator.
#
#   go run ./cmd/mr32run -stats examples/mr32/sieve.s
#
# Prints the number of primes below 10000. The marking loops produce
# textbook stride patterns with many different strides — feed the
# trace to vpredict to watch the DFCM eat them:
#
#   go run ./cmd/mr32run -dump-trace /tmp/sieve.vtr examples/mr32/sieve.s
#   go run ./cmd/vpredict -trace /tmp/sieve.vtr -predictor dfcm
	.data
flags:	.space 10000
msg:	.asciiz "primes below 10000: "
nl:	.asciiz "\n"

	.text
main:
	li   $s0, 10000           # limit
	li   $s1, 2               # candidate
outer:
	lbu  $t0, flags($s1)
	bnez $t0, next            # already marked composite
	# mark multiples 2p, 3p, ...
	addu $t1, $s1, $s1
mark:
	bge  $t1, $s0, next
	li   $t2, 1
	sb   $t2, flags($t1)
	addu $t1, $t1, $s1
	b    mark
next:
	addiu $s1, $s1, 1
	blt  $s1, $s0, outer

	# count unmarked entries >= 2
	li   $s2, 0               # count
	li   $s1, 2
count:
	lbu  $t0, flags($s1)
	bnez $t0, cnext
	addiu $s2, $s2, 1
cnext:
	addiu $s1, $s1, 1
	blt  $s1, $s0, count

	la   $a0, msg
	li   $v0, 4
	syscall
	move $a0, $s2
	li   $v0, 1
	syscall
	la   $a0, nl
	li   $v0, 4
	syscall
	li   $v0, 10
	syscall
