// Delayed update: the paper's section 4.5 effect on a custom
// workload. In a real pipeline the predictor's tables are updated
// only when an instruction's outcome is known — dozens to hundreds of
// predictions later. Instructions that recur within that window
// predict from stale history.
//
//	go run ./examples/delayedupdate
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// A tight loop (8 instructions) and a wide loop (80 instructions):
	// the tight loop recurs well within any realistic delay window,
	// the wide one mostly outside it.
	tight := workload.LoopBody(0x1000, 1, 4, 2, 1)
	wide := workload.LoopBody(0x4000, 10, 40, 20, 10)

	fmt.Printf("%-8s %18s %18s\n", "delay", "tight loop (8 ins)", "wide loop (80 ins)")
	for _, delay := range []int{0, 16, 32, 64, 128, 256, 512} {
		accT := core.Run(
			core.NewDelayed(core.NewDFCM(12, 12), delay),
			workload.Interleave(tight, 20_000),
		).Accuracy()
		accW := core.Run(
			core.NewDelayed(core.NewDFCM(12, 12), delay),
			workload.Interleave(wide, 2_000),
		).Accuracy()
		fmt.Printf("%-8d %18.4f %18.4f\n", delay, accT, accW)
	}

	fmt.Println("\nThe tight loop collapses once the delay spans several iterations;")
	fmt.Println("the wide loop only degrades when the delay window covers its body.")
}
